//! The Listing 1 hash table: the paper's reference BDL-HTM structure.
//!
//! A fixed array of DRAM buckets holds pointers to KV blocks in NVM.
//! Full buckets overflow by linear probing into subsequent buckets (the
//! paper "omits" this case; real code cannot). Each operation is one
//! hardware transaction following the preallocate / claim-epoch /
//! classify / defer-persist protocol.

use crate::hash64;
use bdhtm_core::{
    payload, run_op, CommitEffects, EpochSys, LiveBlock, OpStep, PreallocSlots, UpdateKind,
    KV_UNIVERSE_BITS, OLD_SEE_NEW,
};
use htm_sim::{FallbackLock, Htm, MemAccess, RunError, TxResult};
use nvm_sim::NvmAddr;
use persist_alloc::Header;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Block tag for Listing-1 KV pairs.
pub const LISTING1_KV_TAG: u64 = 0x4C31_4B56; // "L1KV"

const P_KEY: u64 = 0;
const P_VAL: u64 = 1;
const KV_PAYLOAD_WORDS: u64 = 2;

/// Slots per bucket (Listing 1's `BUCKET_SIZE`).
pub const BUCKET_SIZE: usize = 8;
/// Buckets probed before declaring the table full.
const MAX_PROBE: usize = 16;

/// Explicit abort code raised when the probe window has no free slot.
/// Handled outside the transaction so the operation is cleanly ended
/// before the capacity error surfaces.
const TABLE_FULL: u8 = 0xF1;

/// `locate` result: `(slot_index, block)` of a match, plus the first
/// free slot index on the probe path.
type SlotHit = (Option<(usize, NvmAddr)>, Option<usize>);

enum Outcome {
    Inserted,
    Replaced(NvmAddr),
    InPlace,
    Removed(NvmAddr),
    Absent,
}

/// The Listing 1 BDL hash map (fixed capacity).
pub struct BdhtHashMap {
    esys: Arc<EpochSys>,
    htm: Arc<Htm>,
    lock: FallbackLock,
    /// `n_buckets * BUCKET_SIZE` slots of NVM block pointers (0 = empty).
    slots: Box<[AtomicU64]>,
    n_buckets: usize,
    new_blk: PreallocSlots,
}

impl BdhtHashMap {
    /// Creates a table with `n_buckets` buckets of `BUCKET_SIZE` slots.
    pub fn new(n_buckets: usize, esys: Arc<EpochSys>, htm: Arc<Htm>) -> Self {
        assert!(n_buckets.is_power_of_two());
        Self {
            esys,
            htm,
            lock: FallbackLock::new(),
            slots: (0..n_buckets * BUCKET_SIZE)
                .map(|_| AtomicU64::new(0))
                .collect(),
            n_buckets,
            new_blk: PreallocSlots::new(KV_PAYLOAD_WORDS),
        }
    }

    pub fn epoch_sys(&self) -> &Arc<EpochSys> {
        &self.esys
    }

    pub fn htm(&self) -> &Htm {
        &self.htm
    }

    pub fn nvm_bytes(&self) -> u64 {
        self.esys.alloc_stats().bytes_in_use()
    }

    /// Transactionally locates `key`: `(slot_index, block)` if present,
    /// otherwise the first free slot index on the probe path.
    fn locate<'e>(&'e self, m: &mut dyn MemAccess<'e>, key: u64) -> TxResult<SlotHit> {
        let heap = self.esys.heap();
        let start = (hash64(key) as usize) & (self.n_buckets - 1);
        let mut free = None;
        for p in 0..MAX_PROBE {
            let b = (start + p) & (self.n_buckets - 1);
            for i in 0..BUCKET_SIZE {
                let idx = b * BUCKET_SIZE + i;
                let blk = m.load(&self.slots[idx])?;
                if blk == 0 {
                    if free.is_none() {
                        free = Some(idx);
                    }
                    continue;
                }
                let k = m.load(heap.word(payload(NvmAddr(blk), P_KEY)))?;
                if k == key {
                    return Ok((Some((idx, NvmAddr(blk))), free));
                }
            }
            // A bucket with a free slot terminates the probe chain for
            // inserts only if the key cannot be further on; we keep the
            // scan simple and always probe the full window.
        }
        Ok((None, free))
    }

    /// Inserts or updates `key → value` (Listing 1). Returns `true` if
    /// the key was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the probe window is exhausted (table over-full); the
    /// Listing 1 table has no resizing, use [`BdSpash`](crate::BdSpash)
    /// for a growable table.
    pub fn insert(&self, key: u64, value: u64) -> bool {
        let heap = self.esys.heap();
        run_op(&self.esys, Some(&self.new_blk), |op| {
            // retry_regist:
            let (blk, op_epoch) = (op.blk(), op.epoch());
            heap.word(payload(blk, P_KEY)).store(key, Ordering::Release);
            heap.word(payload(blk, P_VAL))
                .store(value, Ordering::Release);
            Header::set_tag(heap, blk, LISTING1_KV_TAG);

            let result = self.htm.run(&self.lock, |m| {
                self.esys.set_epoch(m, blk, op_epoch)?;
                let (found, free) = self.locate(m, key)?;
                match found {
                    Some((idx, old_blk)) => {
                        match self.esys.classify_update(m, old_blk, op_epoch)? {
                            UpdateKind::InPlace => {
                                self.esys.p_set(m, old_blk, P_VAL, value)?;
                                Ok(Outcome::InPlace)
                            }
                            UpdateKind::Replace => {
                                m.store(&self.slots[idx], blk.0)?;
                                Ok(Outcome::Replaced(old_blk))
                            }
                        }
                    }
                    None => match free {
                        Some(idx) => {
                            m.store(&self.slots[idx], blk.0)?;
                            Ok(Outcome::Inserted)
                        }
                        // Probe window exhausted: abort explicitly so the
                        // operation can be ended *before* reporting the
                        // capacity error (a panic inside the op bracket
                        // would leave the epoch announcement set and
                        // stall every future advance).
                        None => Err(m.abort(TABLE_FULL)),
                    },
                }
            });

            // op_done:
            match result {
                Err(RunError(code)) if code == TABLE_FULL => OpStep::restart_after(|| {
                    panic!(
                        "Listing-1 table is full (fixed capacity; use BdSpash \
                         for a growable table)"
                    )
                }),
                Err(e) => Err(e),
                Ok(Outcome::InPlace) => OpStep::commit(CommitEffects::of(false).keep_prealloc()),
                Ok(Outcome::Replaced(old)) => {
                    OpStep::commit(CommitEffects::of(false).retire(old).track(blk))
                }
                Ok(Outcome::Inserted) => OpStep::commit(CommitEffects::of(true).track(blk)),
                Ok(_) => unreachable!(),
            }
        })
    }

    /// Removes `key`. Returns `true` if it was present.
    pub fn remove(&self, key: u64) -> bool {
        run_op(&self.esys, None, |op| {
            let op_epoch = op.epoch();
            let result = self.htm.run(&self.lock, |m| {
                let (found, _) = self.locate(m, key)?;
                match found {
                    None => Ok(Outcome::Absent),
                    Some((idx, blk)) => {
                        let be = self.esys.get_epoch(m, blk)?;
                        if be > op_epoch {
                            return Err(m.abort(OLD_SEE_NEW));
                        }
                        m.store(&self.slots[idx], 0)?;
                        Ok(Outcome::Removed(blk))
                    }
                }
            });
            match result? {
                Outcome::Absent => OpStep::commit(CommitEffects::of(false)),
                Outcome::Removed(blk) => OpStep::commit(CommitEffects::of(true).retire(blk)),
                _ => unreachable!(),
            }
        })
    }

    /// The value of `key`, if present.
    pub fn get(&self, key: u64) -> Option<u64> {
        let r = self
            .htm
            .run(&self.lock, |m| {
                let (found, _) = self.locate(m, key)?;
                match found {
                    None => Ok(None),
                    Some((_, blk)) => Ok(Some(self.esys.p_get(m, blk, P_VAL)?)),
                }
            })
            .expect("lookups raise no explicit aborts");
        if r.is_some() {
            self.esys.heap().charge_media_read();
        }
        r
    }

    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Rebuilds a table from recovered live blocks.
    pub fn recover(
        n_buckets: usize,
        esys: Arc<EpochSys>,
        htm: Arc<Htm>,
        live: &[LiveBlock],
    ) -> BdhtHashMap {
        let t = BdhtHashMap::new(n_buckets, esys, htm);
        let heap = Arc::clone(t.esys.heap());
        for b in live.iter().filter(|b| b.tag == LISTING1_KV_TAG) {
            let key = heap.word(payload(b.addr, P_KEY)).load(Ordering::Acquire);
            let start = (hash64(key) as usize) & (t.n_buckets - 1);
            let mut placed = false;
            'outer: for p in 0..MAX_PROBE {
                let bb = (start + p) & (t.n_buckets - 1);
                for i in 0..BUCKET_SIZE {
                    let idx = bb * BUCKET_SIZE + i;
                    if t.slots[idx].load(Ordering::Relaxed) == 0 {
                        t.slots[idx].store(b.addr.0, Ordering::Relaxed);
                        placed = true;
                        break 'outer;
                    }
                }
            }
            assert!(placed, "recovered table overflow");
        }
        t
    }

    /// Reclaims per-thread preallocated blocks (clean shutdown).
    pub fn drain_preallocated(&self) {
        self.new_blk.drain(&self.esys);
    }

    /// Structural invariant check (call while quiescent):
    ///
    /// * every occupied slot holds an allocated block tagged
    ///   [`LISTING1_KV_TAG`] with a valid (claimed, not-from-the-future)
    ///   epoch;
    /// * the slot lies within the `MAX_PROBE` window of the bucket the
    ///   block's key hashes to;
    /// * no key and no block appears twice.
    pub fn validate(&self) -> Result<(), String> {
        use persist_alloc::BlockState;
        use std::collections::HashSet;
        let heap = self.esys.heap();
        let clock = self.esys.current_epoch();
        let mut keys: HashSet<u64> = HashSet::new();
        let mut blocks: HashSet<u64> = HashSet::new();
        for idx in 0..self.slots.len() {
            let raw = self.slots[idx].load(Ordering::Acquire);
            if raw == 0 {
                continue;
            }
            let blk = NvmAddr(raw);
            match Header::state(heap, blk) {
                Some((BlockState::Allocated, _)) => {}
                other => {
                    return Err(format!(
                        "slot {idx}: block {blk:?} not allocated ({other:?})"
                    ))
                }
            }
            let tag = Header::tag(heap, blk);
            if tag != LISTING1_KV_TAG {
                return Err(format!(
                    "slot {idx}: block {blk:?} has foreign tag {tag:#x}"
                ));
            }
            let be = Header::epoch(heap, blk);
            if be == persist_alloc::INVALID_EPOCH || be > clock {
                return Err(format!(
                    "slot {idx}: block {blk:?} carries invalid epoch {be} (clock {clock})"
                ));
            }
            let key = heap.word(payload(blk, P_KEY)).load(Ordering::Acquire);
            let start = (hash64(key) as usize) & (self.n_buckets - 1);
            let dist = (idx / BUCKET_SIZE + self.n_buckets - start) & (self.n_buckets - 1);
            if dist >= MAX_PROBE {
                return Err(format!(
                    "key {key} stored {dist} buckets past its home (probe window {MAX_PROBE})"
                ));
            }
            if !keys.insert(key) {
                return Err(format!("key {key} present twice"));
            }
            if !blocks.insert(raw) {
                return Err(format!("block {blk:?} referenced twice"));
            }
        }
        Ok(())
    }
}

bdhtm_core::impl_bdl_kv!(BdhtHashMap, name: "listing1-bdht", tag: LISTING1_KV_TAG,
    new: |esys, htm| BdhtHashMap::new(1 << KV_UNIVERSE_BITS, esys, htm),
    recover: |esys, htm, live| BdhtHashMap::recover(1 << KV_UNIVERSE_BITS, esys, htm, live));

#[cfg(test)]
mod tests {
    use super::*;
    use bdhtm_core::EpochConfig;
    use htm_sim::HtmConfig;
    use nvm_sim::{NvmConfig, NvmHeap};
    use std::collections::HashMap;

    fn setup() -> BdhtHashMap {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20)));
        let esys = EpochSys::format(heap, EpochConfig::manual());
        BdhtHashMap::new(1 << 10, esys, Arc::new(Htm::new(HtmConfig::for_tests())))
    }

    #[test]
    fn basic_semantics() {
        let t = setup();
        assert!(t.insert(1, 10));
        assert!(!t.insert(1, 11));
        assert_eq!(t.get(1), Some(11));
        assert!(t.remove(1));
        assert!(!t.remove(1));
        assert_eq!(t.get(1), None);
    }

    #[test]
    fn matches_oracle_with_epochs() {
        let t = setup();
        let mut oracle = HashMap::new();
        let mut rng = 5u64;
        for i in 0..8000u64 {
            if i % 600 == 0 {
                t.epoch_sys().advance();
            }
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            let key = rng % 2048;
            match rng % 3 {
                0 => assert_eq!(t.insert(key, i), oracle.insert(key, i).is_none()),
                1 => assert_eq!(t.remove(key), oracle.remove(&key).is_some()),
                _ => assert_eq!(t.get(key), oracle.get(&key).copied()),
            }
        }
    }

    #[test]
    fn concurrent_ops_with_ticker() {
        use bdhtm_core::EpochTicker;
        use std::time::Duration;
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
        let esys = EpochSys::format(
            heap,
            EpochConfig::manual().with_epoch_len(Duration::from_millis(2)),
        );
        let t = Arc::new(BdhtHashMap::new(
            1 << 12,
            Arc::clone(&esys),
            Arc::new(Htm::new(HtmConfig::for_tests())),
        ));
        let ticker = EpochTicker::spawn(esys);
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let mut rng = tid + 91;
                    for _ in 0..4000 {
                        rng ^= rng >> 12;
                        rng ^= rng << 25;
                        rng ^= rng >> 27;
                        let k = rng % 4096;
                        match rng % 3 {
                            0 => {
                                t.insert(k, k * 7);
                            }
                            1 => {
                                t.remove(k);
                            }
                            _ => {
                                if let Some(v) = t.get(k) {
                                    assert_eq!(v, k * 7);
                                }
                            }
                        }
                    }
                });
            }
        });
        ticker.stop();
    }

    #[test]
    fn crash_recovery_keeps_durable_prefix() {
        let t = setup();
        for k in 0..300 {
            t.insert(k, k + 1);
        }
        t.epoch_sys().advance();
        t.epoch_sys().advance();
        for k in 300..400 {
            t.insert(k, k + 1); // lost
        }
        t.remove(5); // lost

        let heap2 = Arc::new(NvmHeap::from_image(t.epoch_sys().heap().crash()));
        let (esys2, live) = EpochSys::recover(heap2, EpochConfig::manual(), 1);
        let t2 = BdhtHashMap::recover(
            1 << 10,
            esys2,
            Arc::new(Htm::new(HtmConfig::for_tests())),
            &live,
        );
        for k in 0..300 {
            assert_eq!(t2.get(k), Some(k + 1), "durable key {k} lost");
        }
        for k in 300..400 {
            assert_eq!(t2.get(k), None, "undurable key {k} survived");
        }
    }

    #[test]
    fn bucket_overflow_probes_to_neighbours() {
        // Tiny table: force collisions.
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(8 << 20)));
        let esys = EpochSys::format(heap, EpochConfig::manual());
        let t = BdhtHashMap::new(2, esys, Arc::new(Htm::new(HtmConfig::for_tests())));
        for k in 0..2 * BUCKET_SIZE as u64 {
            assert!(t.insert(k, k));
        }
        for k in 0..2 * BUCKET_SIZE as u64 {
            assert_eq!(t.get(k), Some(k));
        }
    }
}
