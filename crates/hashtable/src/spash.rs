//! Spash (Zhang et al., ICDE 2024): the eADR-designed HTM hash table.
//!
//! Extendible hashing: a directory of pointers to NVM *segments* (4 KiB
//! blocks, a multiple of the 256 B XPLine), each holding 62 buckets of a
//! cache line each (3 inline KV pairs + occupancy metadata). Operations
//! are hardware transactions; the directory is guarded by a reader-writer
//! lock whose write side (directory doubling, segment splits) "happens
//! quickly" (§4.3) — workers assist by performing the split of the
//! segment they overflowed.
//!
//! Designed for **persistent caches**: crash consistency comes from eADR
//! (every committed cache line survives), and `clwb` is used purely as a
//! *performance* hint — the DRAM [`HotspotDetector`] flags cold keys whose
//! buckets are proactively written back, keeping cache space for hot data
//! and batching media traffic at XPLine granularity. On a plain-ADR heap
//! Spash runs but silently loses un-flushed data on a crash; that gap is
//! what [`BdSpash`](crate::BdSpash) closes.
//!
//! Simplification (DESIGN.md): the original's thread-local 256 B chunks
//! for *small* cold writes are approximated by the XPLine write-combining
//! accounting of `nvm-sim`; the hot/cold proactive-flush policy itself is
//! implemented faithfully.

use crate::hash64;
use crate::hotspot::HotspotDetector;
use htm_sim::sync::RwLock;
use htm_sim::{FallbackLock, Htm, MemAccess, TxResult};
use nvm_sim::{NvmAddr, NvmHeap};
use persist_alloc::{Header, PAlloc, HDR_WORDS};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Block tag for Spash segments.
pub const SPASH_SEG_TAG: u64 = 0x5350_5348; // "SPSH"

/// Segment payload geometry (class-4 blocks: 512 words, 508 payload).
const SEG_PAYLOAD: u64 = 508;
const SEG_DEPTH: u64 = 0; // local depth
const SEG_VALID: u64 = 1; // commit flag (recovery ignores invalid)
const SEG_BUCKETS: u64 = 8; // first bucket word (line-aligned-ish)
/// Words per bucket: meta + 3 * (key, value) + pad.
const BUCKET_WORDS: u64 = 8;
/// Entries per bucket.
const BUCKET_ENTRIES: u64 = 3;
/// Buckets per segment.
const NBUCKETS: u64 = (SEG_PAYLOAD - SEG_BUCKETS) / BUCKET_WORDS; // 62

enum Outcome {
    Done(Option<u64>),
    NeedSplit,
}

/// `scan` result: `(entry_index, value)` of a match, plus the first
/// free entry index in the bucket.
type ScanHit = (Option<(u64, u64)>, Option<u64>);

/// The eADR hash table.
pub struct Spash {
    heap: Arc<NvmHeap>,
    alloc: Arc<PAlloc>,
    htm: Arc<Htm>,
    lock: FallbackLock,
    dir: RwLock<Directory>,
    hotspot: HotspotDetector,
}

struct Directory {
    global_depth: u32,
    segments: Vec<NvmAddr>,
}

impl Spash {
    /// Creates a table on `heap` (normally an eADR-configured heap; see
    /// [`NvmConfig::optane_eadr`](nvm_sim::NvmConfig::optane_eadr)).
    pub fn new(heap: Arc<NvmHeap>, htm: Arc<Htm>) -> Self {
        let alloc = Arc::new(PAlloc::new(Arc::clone(&heap)));
        Self::with_alloc(heap, alloc, htm)
    }

    /// Creates a table over an existing allocator (shared heap).
    pub fn with_alloc(heap: Arc<NvmHeap>, alloc: Arc<PAlloc>, htm: Arc<Htm>) -> Self {
        let s0 = Self::new_segment(&heap, &alloc, 1);
        let s1 = Self::new_segment(&heap, &alloc, 1);
        Self {
            heap,
            alloc,
            htm,
            lock: FallbackLock::new(),
            dir: RwLock::new(Directory {
                global_depth: 1,
                segments: vec![s0, s1],
            }),
            hotspot: HotspotDetector::new(1 << 16, 4),
        }
    }

    fn new_segment(heap: &NvmHeap, alloc: &PAlloc, depth: u32) -> NvmAddr {
        let seg = alloc.alloc_for_payload(SEG_PAYLOAD);
        Header::set_tag(heap, seg, SPASH_SEG_TAG);
        Header::set_epoch(heap, seg, 0);
        heap.write(seg.offset(HDR_WORDS + SEG_DEPTH), depth as u64);
        heap.write(seg.offset(HDR_WORDS + SEG_VALID), 1);
        heap.persist_range(seg, HDR_WORDS + SEG_BUCKETS);
        heap.fence();
        seg
    }

    pub fn heap(&self) -> &Arc<NvmHeap> {
        &self.heap
    }

    pub fn htm(&self) -> &Htm {
        &self.htm
    }

    /// NVM bytes held by segments.
    pub fn nvm_bytes(&self) -> u64 {
        self.alloc.stats().bytes_in_use()
    }

    #[inline]
    fn bucket_word(&self, seg: NvmAddr, bucket: u64, w: u64) -> NvmAddr {
        seg.offset(HDR_WORDS + SEG_BUCKETS + bucket * BUCKET_WORDS + w)
    }

    #[inline]
    fn bucket_of(h: u64) -> u64 {
        (h >> 32) % NBUCKETS
    }

    /// Proactive write-back of a (cold) bucket line — the Spash policy.
    fn flush_cold(&self, seg: NvmAddr, bucket: u64, hot: bool) {
        if !hot {
            self.heap.clwb(self.bucket_word(seg, bucket, 0));
        }
    }

    /// Transactional bucket scan. Returns `(entry_index, value)` for a
    /// match, or the first free entry index.
    fn scan<'e>(
        &'e self,
        m: &mut dyn MemAccess<'e>,
        seg: NvmAddr,
        bucket: u64,
        key: u64,
    ) -> TxResult<ScanHit> {
        let meta = m.load(self.heap.word(self.bucket_word(seg, bucket, 0)))?;
        let mut free = None;
        for i in 0..BUCKET_ENTRIES {
            if meta & (1 << i) == 0 {
                if free.is_none() {
                    free = Some(i);
                }
                continue;
            }
            let k = m.load(self.heap.word(self.bucket_word(seg, bucket, 1 + 2 * i)))?;
            if k == key {
                let v = m.load(self.heap.word(self.bucket_word(seg, bucket, 2 + 2 * i)))?;
                return Ok((Some((i, v)), free));
            }
        }
        Ok((None, free))
    }

    /// Inserts or updates. Returns the previous value if present.
    pub fn insert(&self, key: u64, value: u64) -> Option<u64> {
        let h = hash64(key);
        let hot = self.hotspot.touch(h);
        loop {
            let dir = self.dir.read();
            let seg = dir.segments[(h & ((1 << dir.global_depth) - 1)) as usize];
            let bucket = Self::bucket_of(h);
            let r = self
                .htm
                .run(&self.lock, |m| {
                    let (found, free) = self.scan(m, seg, bucket, key)?;
                    match (found, free) {
                        (Some((i, old)), _) => {
                            m.store(
                                self.heap.word(self.bucket_word(seg, bucket, 2 + 2 * i)),
                                value,
                            )?;
                            Ok(Outcome::Done(Some(old)))
                        }
                        (None, Some(i)) => {
                            let meta = m.load(self.heap.word(self.bucket_word(seg, bucket, 0)))?;
                            m.store(
                                self.heap.word(self.bucket_word(seg, bucket, 1 + 2 * i)),
                                key,
                            )?;
                            m.store(
                                self.heap.word(self.bucket_word(seg, bucket, 2 + 2 * i)),
                                value,
                            )?;
                            m.store(
                                self.heap.word(self.bucket_word(seg, bucket, 0)),
                                meta | (1 << i),
                            )?;
                            Ok(Outcome::Done(None))
                        }
                        (None, None) => Ok(Outcome::NeedSplit),
                    }
                })
                .expect("spash raises no explicit aborts");
            match r {
                Outcome::Done(old) => {
                    self.flush_cold(seg, bucket, hot);
                    return old;
                }
                Outcome::NeedSplit => {
                    drop(dir);
                    self.split(h);
                }
            }
        }
    }

    /// The value of `key`, if present.
    pub fn get(&self, key: u64) -> Option<u64> {
        let h = hash64(key);
        self.hotspot.touch(h);
        let dir = self.dir.read();
        let seg = dir.segments[(h & ((1 << dir.global_depth) - 1)) as usize];
        let bucket = Self::bucket_of(h);
        self.htm
            .run(&self.lock, |m| {
                let (found, _) = self.scan(m, seg, bucket, key)?;
                Ok(found.map(|(_, v)| v))
            })
            .expect("spash raises no explicit aborts")
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: u64) -> Option<u64> {
        let h = hash64(key);
        let hot = self.hotspot.touch(h);
        let dir = self.dir.read();
        let seg = dir.segments[(h & ((1 << dir.global_depth) - 1)) as usize];
        let bucket = Self::bucket_of(h);
        let r = self
            .htm
            .run(&self.lock, |m| {
                let (found, _) = self.scan(m, seg, bucket, key)?;
                match found {
                    None => Ok(None),
                    Some((i, v)) => {
                        let meta = m.load(self.heap.word(self.bucket_word(seg, bucket, 0)))?;
                        m.store(
                            self.heap.word(self.bucket_word(seg, bucket, 0)),
                            meta & !(1 << i),
                        )?;
                        Ok(Some(v))
                    }
                }
            })
            .expect("spash raises no explicit aborts");
        if r.is_some() {
            self.flush_cold(seg, bucket, hot);
        }
        r
    }

    /// Splits the segment covering hash `h`, doubling the directory if
    /// its local depth equals the global depth. This is the worker-assist
    /// path: the thread that overflowed performs the migration.
    fn split(&self, h: u64) {
        let mut dir = self.dir.write();
        let mask = (1u64 << dir.global_depth) - 1;
        let idx = (h & mask) as usize;
        let old = dir.segments[idx];
        let ld = self.heap.read(old.offset(HDR_WORDS + SEG_DEPTH)) as u32;
        if ld == dir.global_depth {
            // Directory doubling — quick, under the global lock.
            let n = dir.segments.len();
            let mut segs = Vec::with_capacity(2 * n);
            segs.extend_from_slice(&dir.segments);
            segs.extend_from_slice(&dir.segments);
            dir.segments = segs;
            dir.global_depth += 1;
        }
        // Split `old` (depth ld) into two depth-(ld+1) segments.
        let a = Self::new_segment(&self.heap, &self.alloc, ld + 1);
        let b = Self::new_segment(&self.heap, &self.alloc, ld + 1);
        for bucket in 0..NBUCKETS {
            let meta = self
                .heap
                .word(self.bucket_word(old, bucket, 0))
                .load(Ordering::Acquire);
            for i in 0..BUCKET_ENTRIES {
                if meta & (1 << i) == 0 {
                    continue;
                }
                let k = self
                    .heap
                    .word(self.bucket_word(old, bucket, 1 + 2 * i))
                    .load(Ordering::Acquire);
                let v = self
                    .heap
                    .word(self.bucket_word(old, bucket, 2 + 2 * i))
                    .load(Ordering::Acquire);
                let hk = hash64(k);
                let tgt = if hk & (1 << ld) == 0 { a } else { b };
                let tb = Self::bucket_of(hk);
                let tmeta_addr = self.bucket_word(tgt, tb, 0);
                let tmeta = self.heap.word(tmeta_addr).load(Ordering::Acquire);
                let slot = (0..BUCKET_ENTRIES)
                    .find(|j| tmeta & (1 << j) == 0)
                    .expect("split target bucket overflow");
                self.heap.write(self.bucket_word(tgt, tb, 1 + 2 * slot), k);
                self.heap.write(self.bucket_word(tgt, tb, 2 + 2 * slot), v);
                self.heap.write(tmeta_addr, tmeta | (1 << slot));
            }
        }
        // Publish: every directory entry that pointed at `old` now points
        // at `a` or `b` according to bit `ld` of the entry index.
        let gd = dir.global_depth;
        for e in 0..(1usize << gd) {
            if dir.segments[e] == old {
                dir.segments[e] = if (e as u64) & (1 << ld) == 0 { a } else { b };
            }
        }
        // Persist the children eagerly (cheap hints under eADR) and
        // retire the parent.
        self.heap.persist_range(a, HDR_WORDS + SEG_PAYLOAD);
        self.heap.persist_range(b, HDR_WORDS + SEG_PAYLOAD);
        self.heap.fence();
        self.alloc.free(old);
    }

    /// Rebuilds a Spash directory from a recovered (eADR) heap scan.
    pub fn recover(heap: Arc<NvmHeap>, htm: Arc<Htm>) -> Spash {
        assert!(
            heap.config().eadr,
            "Spash recovery is only meaningful with persistent caches"
        );
        let (alloc, blocks) = PAlloc::recover(Arc::clone(&heap));
        let alloc = Arc::new(alloc);
        let mut segs: Vec<(NvmAddr, u32)> = Vec::new();
        let mut max_depth = 1;
        for b in &blocks {
            if b.tag != SPASH_SEG_TAG {
                continue;
            }
            if heap.read(b.addr.offset(HDR_WORDS + SEG_VALID)) != 1 {
                alloc.free(b.addr);
                continue;
            }
            let ld = heap.read(b.addr.offset(HDR_WORDS + SEG_DEPTH)) as u32;
            max_depth = max_depth.max(ld);
            segs.push((b.addr, ld));
        }
        // Place each non-empty segment into the directory slots matching
        // its key prefix; deeper segments win (they shadow a stale
        // parent). Slots left uncovered get fresh empty segments.
        let gd = max_depth;
        let mut directory = vec![(NvmAddr::NULL, 0u32); 1 << gd];
        for &(seg, ld) in &segs {
            // Derive the segment's prefix once from its first stored key,
            // then write exactly its 2^(gd-ld) matching slots: linear in
            // directory size instead of (segments x slots) probing.
            let Some(prefix) = Self::segment_prefix(&heap, seg, ld) else {
                continue; // empty segment: unrecoverable prefix
            };
            let step = 1u64 << ld;
            let mut e = prefix;
            while e < (1u64 << gd) {
                let slot = &mut directory[e as usize];
                if ld >= slot.1 {
                    *slot = (seg, ld);
                }
                e += step;
            }
        }
        for slot in directory.iter_mut() {
            if slot.0.is_null() {
                *slot = (Self::new_segment(&heap, &alloc, gd), gd);
            }
        }
        let table = Spash {
            heap,
            alloc,
            htm,
            lock: FallbackLock::new(),
            dir: RwLock::new(Directory {
                global_depth: gd,
                segments: directory.iter().map(|&(s, _)| s).collect(),
            }),
            hotspot: HotspotDetector::new(1 << 16, 4),
        };
        table
    }

    /// The directory prefix of a segment of depth `ld`: the low `ld` bits
    /// of any stored key's hash (all keys in a segment share them).
    /// `None` if the segment is empty (its prefix is unrecoverable).
    fn segment_prefix(heap: &NvmHeap, seg: NvmAddr, ld: u32) -> Option<u64> {
        let mask = (1u64 << ld) - 1;
        for bucket in 0..NBUCKETS {
            let meta = heap.read(seg.offset(HDR_WORDS + SEG_BUCKETS + bucket * BUCKET_WORDS));
            for i in 0..BUCKET_ENTRIES {
                if meta & (1 << i) != 0 {
                    let k = heap.read(
                        seg.offset(HDR_WORDS + SEG_BUCKETS + bucket * BUCKET_WORDS + 1 + 2 * i),
                    );
                    return Some(hash64(k) & mask);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::HtmConfig;
    use nvm_sim::NvmConfig;
    use std::collections::HashMap;

    fn eadr_table() -> Spash {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20).with_eadr(true)));
        Spash::new(heap, Arc::new(Htm::new(HtmConfig::for_tests())))
    }

    #[test]
    fn basic_semantics() {
        let t = eadr_table();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(1), Some(11));
        assert_eq!(t.remove(1), Some(11));
        assert_eq!(t.remove(1), None);
    }

    #[test]
    fn grows_through_splits_and_doubling() {
        let t = eadr_table();
        let n = 20_000u64;
        for k in 0..n {
            t.insert(k, k * 3);
        }
        assert!(t.dir.read().global_depth > 1, "no directory growth");
        for k in 0..n {
            assert_eq!(t.get(k), Some(k * 3), "key {k} lost in splits");
        }
    }

    #[test]
    fn matches_oracle() {
        let t = eadr_table();
        let mut oracle = HashMap::new();
        let mut rng = 3u64;
        for i in 0..20_000u64 {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            let key = rng % 4096;
            match rng % 3 {
                0 => assert_eq!(t.insert(key, i), oracle.insert(key, i)),
                1 => assert_eq!(t.remove(key), oracle.remove(&key)),
                _ => assert_eq!(t.get(key), oracle.get(&key).copied()),
            }
        }
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let t = Arc::new(eadr_table());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..4000u64 {
                        let k = tid * 100_000 + i;
                        t.insert(k, k ^ 0xF0F0);
                    }
                });
            }
        });
        for tid in 0..4u64 {
            for i in 0..4000u64 {
                let k = tid * 100_000 + i;
                assert_eq!(t.get(k), Some(k ^ 0xF0F0), "lost {k}");
            }
        }
    }

    #[test]
    fn eadr_crash_preserves_everything() {
        let t = eadr_table();
        for k in 0..5000 {
            t.insert(k, k + 9);
        }
        let heap2 = Arc::new(NvmHeap::from_image(t.heap().crash()));
        let t2 = Spash::recover(heap2, Arc::new(Htm::new(HtmConfig::for_tests())));
        for k in 0..5000 {
            assert_eq!(t2.get(k), Some(k + 9), "eADR key {k} lost");
        }
    }

    #[test]
    fn adr_crash_loses_unflushed_data() {
        // The motivating failure: Spash on a volatile-cache machine.
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
        let t = Spash::new(
            Arc::clone(&heap),
            Arc::new(Htm::new(HtmConfig::for_tests())),
        );
        for k in 0..100 {
            t.insert(k, k);
        }
        let img = heap.crash();
        // Hot (never-flushed) data must be missing from the media image:
        // the crash image and the live volatile image differ somewhere.
        let mut differs = false;
        for w in 0..img.len_words() as u64 {
            if img.word(NvmAddr(w)) != heap.word(NvmAddr(w)).load(Ordering::Relaxed) {
                differs = true;
                break;
            }
        }
        assert!(differs, "ADR crash unexpectedly preserved all Spash state");
    }
}
