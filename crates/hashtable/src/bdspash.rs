//! BD-Spash: the §4.3 back-port of Spash to plain-ADR machines.
//!
//! Directory and bucket metadata move to DRAM; each entry points at a KV
//! block in NVM managed by the epoch system, which supplies buffered
//! durability where eADR used to supply it for free. The hotspot detector
//! keeps its job with a new meaning: **large cold** values are written
//! back immediately (optimizing cache residency and NVM bandwidth, and
//! sparing the epoch flusher the work), while small or hot values ride
//! the epoch buffers — whose end-of-epoch batching naturally coalesces
//! adjacent writes, which is why BD-Spash drops Spash's small-write
//! chunking (§4.3). If the heap reports eADR, the epoch system disables
//! itself and BD-Spash runs Spash-style.

use crate::hash64;
use crate::hotspot::HotspotDetector;
use bdhtm_core::{
    payload, run_op, CommitEffects, EpochSys, LiveBlock, OpStep, PreallocSlots, UpdateKind,
    OLD_SEE_NEW,
};
use htm_sim::sync::RwLock;
use htm_sim::{FallbackLock, Htm, MemAccess, TxResult};
use nvm_sim::NvmAddr;
use persist_alloc::{class_for_payload, Header};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Block tag identifying BD-Spash KV blocks.
pub const BDSPASH_KV_TAG: u64 = 0x4244_5350; // "BDSP"

const P_KEY: u64 = 0;
const P_VAL: u64 = 1; // value words follow

/// DRAM segment geometry: 64 buckets of 8 slots.
const NBUCKETS: usize = 64;
const BUCKET_SLOTS: usize = 8;
const SEG_SLOTS: usize = NBUCKETS * BUCKET_SLOTS;

/// A value block counts as "large" (eagerly persisted when cold) from
/// this size class upward (256 B = one XPLine).
const LARGE_CLASS: usize = 2;

/// `scan` result: `(slot_index, block)` of a match, plus the first free
/// slot index seen on the probe path.
type ScanHit = (Option<(usize, NvmAddr)>, Option<usize>);

struct Segment {
    local_depth: u32,
    /// NVM block pointers (0 = empty).
    slots: Box<[AtomicU64; SEG_SLOTS]>,
}

impl Segment {
    fn boxed(local_depth: u32) -> Arc<Segment> {
        Arc::new(Segment {
            local_depth,
            slots: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
        })
    }
}

struct Directory {
    global_depth: u32,
    segments: Vec<Arc<Segment>>,
}

enum Outcome {
    Inserted,
    Replaced(NvmAddr),
    InPlace(NvmAddr),
    Removed(NvmAddr),
    Absent,
    NeedSplit,
}

/// The buffered-durable Spash back-port.
pub struct BdSpash {
    esys: Arc<EpochSys>,
    htm: Arc<Htm>,
    lock: FallbackLock,
    dir: RwLock<Directory>,
    hotspot: HotspotDetector,
    /// Payload words per value (1 = the paper's 8-byte values; larger
    /// values exercise the large-cold eager-persist path).
    value_words: u64,
    new_blk: PreallocSlots,
}

impl BdSpash {
    pub fn new(esys: Arc<EpochSys>, htm: Arc<Htm>) -> Self {
        Self::with_value_words(esys, htm, 1)
    }

    /// A table whose values occupy `value_words` 8-byte words.
    pub fn with_value_words(esys: Arc<EpochSys>, htm: Arc<Htm>, value_words: u64) -> Self {
        assert!(value_words >= 1);
        Self {
            esys,
            htm,
            lock: FallbackLock::new(),
            dir: RwLock::new(Directory {
                global_depth: 1,
                segments: vec![Segment::boxed(1), Segment::boxed(1)],
            }),
            hotspot: HotspotDetector::new(1 << 16, 4),
            value_words,
            new_blk: PreallocSlots::new(1 + value_words),
        }
    }

    pub fn epoch_sys(&self) -> &Arc<EpochSys> {
        &self.esys
    }

    pub fn htm(&self) -> &Htm {
        &self.htm
    }

    pub fn nvm_bytes(&self) -> u64 {
        self.esys.alloc_stats().bytes_in_use()
    }

    fn kv_payload_words(&self) -> u64 {
        1 + self.value_words
    }

    /// Whether this table's KV blocks are "large" (eager-persist class).
    fn blocks_are_large(&self) -> bool {
        class_for_payload(self.kv_payload_words())
            .map(|c| c >= LARGE_CLASS)
            .unwrap_or(false)
    }

    #[inline]
    fn bucket_of(h: u64) -> usize {
        ((h >> 32) as usize) % NBUCKETS
    }

    /// Transactional bucket scan over a DRAM segment.
    fn scan<'e>(
        &'e self,
        m: &mut dyn MemAccess<'e>,
        seg: &'e Segment,
        bucket: usize,
        key: u64,
    ) -> TxResult<ScanHit> {
        let heap = self.esys.heap();
        let mut free = None;
        for i in 0..BUCKET_SLOTS {
            let idx = bucket * BUCKET_SLOTS + i;
            let blk = m.load(&seg.slots[idx])?;
            if blk == 0 {
                if free.is_none() {
                    free = Some(idx);
                }
                continue;
            }
            let k = m.load(heap.word(payload(NvmAddr(blk), P_KEY)))?;
            if k == key {
                return Ok((Some((idx, NvmAddr(blk))), free));
            }
        }
        Ok((None, free))
    }

    /// Persistence policy after a committed write: large cold blocks are
    /// flushed immediately (`persist_now` — the data reaches media right
    /// after commit, freeing cache and spreading NVM bandwidth, and the
    /// epoch flusher skips them entirely); everything else is tracked
    /// for the epoch flusher (the coalescing argument of §4.3).
    /// Visibility to recovery is still gated by the epoch frontier
    /// either way, so durability semantics are unchanged. An in-place
    /// update of an eagerly persisted block later in the same epoch
    /// re-tracks it (see the `InPlace` arm of `insert`).
    fn persist_effect<R>(&self, fx: CommitEffects<R>, blk: NvmAddr, hot: bool) -> CommitEffects<R> {
        if !hot && self.blocks_are_large() {
            fx.persist_now(blk)
        } else {
            fx.track(blk)
        }
    }

    /// Inserts or updates `key`. Returns `true` if newly inserted. The
    /// value's first word is `value`; remaining value words (if
    /// `value_words > 1`) are filled with `value` rotated (deterministic
    /// filler standing in for a payload).
    pub fn insert(&self, key: u64, value: u64) -> bool {
        let h = hash64(key);
        let hot = self.hotspot.touch(h);
        let heap = self.esys.heap();
        run_op(&self.esys, Some(&self.new_blk), |op| {
            let (blk, op_epoch) = (op.blk(), op.epoch());
            heap.word(payload(blk, P_KEY)).store(key, Ordering::Release);
            for w in 0..self.value_words {
                heap.word(payload(blk, P_VAL + w))
                    .store(value.rotate_left(w as u32), Ordering::Release);
            }
            Header::set_tag(heap, blk, BDSPASH_KV_TAG);

            let dir = self.dir.read();
            let seg = Arc::clone(&dir.segments[(h & ((1 << dir.global_depth) - 1)) as usize]);
            let bucket = Self::bucket_of(h);
            let result = self.htm.run(&self.lock, |m| {
                self.esys.set_epoch(m, blk, op_epoch)?;
                let (found, free) = self.scan(m, &seg, bucket, key)?;
                match (found, free) {
                    (Some((_, old_blk)), _) => {
                        match self.esys.classify_update(m, old_blk, op_epoch)? {
                            UpdateKind::InPlace => {
                                self.esys.p_set(m, old_blk, P_VAL, value)?;
                                Ok(Outcome::InPlace(old_blk))
                            }
                            UpdateKind::Replace => {
                                let (idx, _) = found.unwrap();
                                m.store(&seg.slots[idx], blk.0)?;
                                Ok(Outcome::Replaced(old_blk))
                            }
                        }
                    }
                    (None, Some(idx)) => {
                        m.store(&seg.slots[idx], blk.0)?;
                        Ok(Outcome::Inserted)
                    }
                    (None, None) => Ok(Outcome::NeedSplit),
                }
            });
            drop(dir);

            match result? {
                Outcome::NeedSplit => OpStep::restart_after(move || self.split(h)),
                Outcome::InPlace(updated) => {
                    let mut fx = CommitEffects::of(false).keep_prealloc();
                    if self.blocks_are_large() {
                        // The updated block may have been eagerly
                        // persisted and skipped by the flusher:
                        // re-track so the new value reaches media.
                        fx = fx.track(updated);
                    }
                    OpStep::commit(fx)
                }
                Outcome::Replaced(old) => OpStep::commit(self.persist_effect(
                    CommitEffects::of(false).retire(old),
                    blk,
                    hot,
                )),
                Outcome::Inserted => {
                    OpStep::commit(self.persist_effect(CommitEffects::of(true), blk, hot))
                }
                _ => unreachable!(),
            }
        })
    }

    /// Removes `key`. Returns `true` if present.
    pub fn remove(&self, key: u64) -> bool {
        let h = hash64(key);
        self.hotspot.touch(h);
        run_op(&self.esys, None, |op| {
            let op_epoch = op.epoch();
            let dir = self.dir.read();
            let seg = Arc::clone(&dir.segments[(h & ((1 << dir.global_depth) - 1)) as usize]);
            let bucket = Self::bucket_of(h);
            let result = self.htm.run(&self.lock, |m| {
                let (found, _) = self.scan(m, &seg, bucket, key)?;
                match found {
                    None => Ok(Outcome::Absent),
                    Some((idx, blk)) => {
                        let be = self.esys.get_epoch(m, blk)?;
                        if be > op_epoch {
                            return Err(m.abort(OLD_SEE_NEW));
                        }
                        m.store(&seg.slots[idx], 0)?;
                        Ok(Outcome::Removed(blk))
                    }
                }
            });
            drop(dir);
            match result? {
                Outcome::Absent => OpStep::commit(CommitEffects::of(false)),
                Outcome::Removed(blk) => OpStep::commit(CommitEffects::of(true).retire(blk)),
                _ => unreachable!(),
            }
        })
    }

    /// The first value word of `key`, if present.
    pub fn get(&self, key: u64) -> Option<u64> {
        let h = hash64(key);
        self.hotspot.touch(h);
        let dir = self.dir.read();
        let seg = Arc::clone(&dir.segments[(h & ((1 << dir.global_depth) - 1)) as usize]);
        let bucket = Self::bucket_of(h);
        let r = self
            .htm
            .run(&self.lock, |m| {
                let (found, _) = self.scan(m, &seg, bucket, key)?;
                match found {
                    None => Ok(None),
                    Some((_, blk)) => Ok(Some(self.esys.p_get(m, blk, P_VAL)?)),
                }
            })
            .expect("lookups raise no explicit aborts");
        if r.is_some() {
            self.esys.heap().charge_media_read();
        }
        r
    }

    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Splits the segment covering `h`, doubling the directory when the
    /// local depth has reached the global depth.
    fn split(&self, h: u64) {
        let heap = self.esys.heap();
        let mut dir = self.dir.write();
        let mask = (1u64 << dir.global_depth) - 1;
        let idx = (h & mask) as usize;
        let old = Arc::clone(&dir.segments[idx]);
        let ld = old.local_depth;
        if ld == dir.global_depth {
            let n = dir.segments.len();
            let mut segs = Vec::with_capacity(2 * n);
            segs.extend(dir.segments.iter().cloned());
            segs.extend(dir.segments.iter().cloned());
            dir.segments = segs;
            dir.global_depth += 1;
        }
        let a = Segment::boxed(ld + 1);
        let b = Segment::boxed(ld + 1);
        for s in 0..SEG_SLOTS {
            let blk = old.slots[s].load(Ordering::Acquire);
            if blk == 0 {
                continue;
            }
            let k = heap
                .word(payload(NvmAddr(blk), P_KEY))
                .load(Ordering::Acquire);
            let hk = hash64(k);
            let tgt = if hk & (1 << ld) == 0 { &a } else { &b };
            let bucket = Self::bucket_of(hk);
            let slot = (0..BUCKET_SLOTS)
                .map(|i| bucket * BUCKET_SLOTS + i)
                .find(|&i| tgt.slots[i].load(Ordering::Relaxed) == 0)
                .expect("split target bucket overflow");
            tgt.slots[slot].store(blk, Ordering::Release);
        }
        let gd = dir.global_depth;
        for e in 0..(1usize << gd) {
            if Arc::ptr_eq(&dir.segments[e], &old) {
                dir.segments[e] = if (e as u64) & (1 << ld) == 0 {
                    Arc::clone(&a)
                } else {
                    Arc::clone(&b)
                };
            }
        }
    }

    /// Rebuilds a table from recovered live blocks.
    pub fn recover(esys: Arc<EpochSys>, htm: Arc<Htm>, live: &[LiveBlock]) -> BdSpash {
        let t = BdSpash::new(esys, htm);
        let heap = Arc::clone(t.esys.heap());
        for b in live.iter().filter(|b| b.tag == BDSPASH_KV_TAG) {
            let key = heap.word(payload(b.addr, P_KEY)).load(Ordering::Acquire);
            let h = hash64(key);
            loop {
                let placed = {
                    let dir = t.dir.read();
                    let seg =
                        Arc::clone(&dir.segments[(h & ((1 << dir.global_depth) - 1)) as usize]);
                    let bucket = Self::bucket_of(h);
                    (0..BUCKET_SLOTS)
                        .map(|i| bucket * BUCKET_SLOTS + i)
                        .find(|&i| seg.slots[i].load(Ordering::Relaxed) == 0)
                        .inspect(|&i| seg.slots[i].store(b.addr.0, Ordering::Release))
                        .is_some()
                };
                if placed {
                    break;
                }
                t.split(h);
            }
        }
        t
    }

    /// Reclaims per-thread preallocated blocks (clean shutdown).
    pub fn drain_preallocated(&self) {
        self.new_blk.drain(&self.esys);
    }

    /// Structural invariant check for the fault-injection harness. Call
    /// while quiescent (e.g. right after recovery); verifies:
    ///
    /// * the directory holds `2^global_depth` entries, every segment's
    ///   local depth is at most the global depth, and all entries
    ///   sharing a segment agree with its canonical (low-bits) entry;
    /// * every occupied slot holds an allocated block tagged
    ///   [`BDSPASH_KV_TAG`] with a valid (claimed, not-from-the-future)
    ///   epoch, whose key hashes back to exactly that segment and
    ///   bucket;
    /// * no key and no block appears twice.
    pub fn validate(&self) -> Result<(), String> {
        use persist_alloc::BlockState;
        use std::collections::HashSet;
        let heap = self.esys.heap();
        let clock = self.esys.current_epoch();
        let dir = self.dir.read();
        let mask = (1u64 << dir.global_depth) - 1;
        if dir.segments.len() != 1usize << dir.global_depth {
            return Err(format!(
                "validate: {} directory entries for global depth {}",
                dir.segments.len(),
                dir.global_depth
            ));
        }
        let mut keys: HashSet<u64> = HashSet::new();
        let mut blocks: HashSet<u64> = HashSet::new();
        for (e, seg) in dir.segments.iter().enumerate() {
            if seg.local_depth > dir.global_depth {
                return Err(format!(
                    "validate: entry {e} has local depth {} > global {}",
                    seg.local_depth, dir.global_depth
                ));
            }
            let canon = e & ((1usize << seg.local_depth) - 1);
            if !Arc::ptr_eq(seg, &dir.segments[canon]) {
                return Err(format!(
                    "validate: entries {e} and {canon} disagree on a depth-{} segment",
                    seg.local_depth
                ));
            }
            if e != canon {
                continue; // scan each segment once, at its canonical entry
            }
            for idx in 0..SEG_SLOTS {
                let raw = seg.slots[idx].load(Ordering::Acquire);
                if raw == 0 {
                    continue;
                }
                let blk = NvmAddr(raw);
                match Header::state(heap, blk) {
                    Some((BlockState::Allocated, _)) => {}
                    other => {
                        return Err(format!(
                            "entry {e} slot {idx}: block {blk:?} not allocated ({other:?})"
                        ))
                    }
                }
                let tag = Header::tag(heap, blk);
                if tag != BDSPASH_KV_TAG {
                    return Err(format!(
                        "entry {e} slot {idx}: block {blk:?} has foreign tag {tag:#x}"
                    ));
                }
                let be = Header::epoch(heap, blk);
                if be == persist_alloc::INVALID_EPOCH || be > clock {
                    return Err(format!(
                        "entry {e} slot {idx}: block {blk:?} carries invalid epoch {be} \
                         (clock {clock})"
                    ));
                }
                let key = heap.word(payload(blk, P_KEY)).load(Ordering::Acquire);
                let h = hash64(key);
                if !Arc::ptr_eq(&dir.segments[(h & mask) as usize], seg) {
                    return Err(format!(
                        "key {key} stored in a segment its hash does not select"
                    ));
                }
                if idx / BUCKET_SLOTS != Self::bucket_of(h) {
                    return Err(format!(
                        "key {key} stored in bucket {} but hashes to bucket {}",
                        idx / BUCKET_SLOTS,
                        Self::bucket_of(h)
                    ));
                }
                if !keys.insert(key) {
                    return Err(format!("key {key} present twice"));
                }
                if !blocks.insert(raw) {
                    return Err(format!("block {blk:?} referenced twice"));
                }
            }
        }
        Ok(())
    }
}

bdhtm_core::impl_bdl_kv!(BdSpash, name: "bd-spash", tag: BDSPASH_KV_TAG,
    new: BdSpash::new, recover: BdSpash::recover);

#[cfg(test)]
mod tests {
    use super::*;
    use bdhtm_core::EpochConfig;
    use htm_sim::HtmConfig;
    use nvm_sim::{NvmConfig, NvmHeap};
    use std::collections::HashMap;

    fn setup() -> BdSpash {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
        let esys = EpochSys::format(heap, EpochConfig::manual());
        BdSpash::new(esys, Arc::new(Htm::new(HtmConfig::for_tests())))
    }

    #[test]
    fn basic_semantics() {
        let t = setup();
        assert!(t.insert(9, 90));
        assert!(!t.insert(9, 91));
        assert_eq!(t.get(9), Some(91));
        assert!(t.remove(9));
        assert!(!t.remove(9));
        assert_eq!(t.get(9), None);
    }

    #[test]
    fn grows_with_splits() {
        let t = setup();
        let n = 10_000u64;
        for k in 0..n {
            t.insert(k, k + 5);
        }
        assert!(t.dir.read().global_depth > 1);
        for k in 0..n {
            assert_eq!(t.get(k), Some(k + 5), "key {k} lost in split");
        }
        t.validate().expect("post-split invariants");
    }

    #[test]
    fn matches_oracle_with_epochs() {
        let t = setup();
        let mut oracle = HashMap::new();
        let mut rng = 17u64;
        for i in 0..12_000u64 {
            if i % 900 == 0 {
                t.epoch_sys().advance();
            }
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            let key = rng % 4096;
            match rng % 3 {
                0 => assert_eq!(t.insert(key, i), oracle.insert(key, i).is_none()),
                1 => assert_eq!(t.remove(key), oracle.remove(&key).is_some()),
                _ => assert_eq!(t.get(key), oracle.get(&key).copied()),
            }
        }
    }

    #[test]
    fn concurrent_ops_with_splits() {
        let t = Arc::new(setup());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..5000u64 {
                        let k = tid * 1_000_000 + i;
                        t.insert(k, k + 1);
                        if i % 16 == 0 {
                            assert_eq!(t.get(k), Some(k + 1));
                        }
                    }
                });
            }
        });
        for tid in 0..4u64 {
            for i in 0..5000u64 {
                let k = tid * 1_000_000 + i;
                assert_eq!(t.get(k), Some(k + 1), "lost {k}");
            }
        }
    }

    #[test]
    fn crash_recovery_durable_prefix() {
        let t = setup();
        for k in 0..1000 {
            t.insert(k, k * 2);
        }
        t.epoch_sys().advance();
        t.epoch_sys().advance();
        for k in 1000..1200 {
            t.insert(k, k * 2); // lost
        }
        let heap2 = Arc::new(NvmHeap::from_image(t.epoch_sys().heap().crash()));
        let (esys2, live) = EpochSys::recover(heap2, EpochConfig::manual(), 2);
        let t2 = BdSpash::recover(esys2, Arc::new(Htm::new(HtmConfig::for_tests())), &live);
        t2.validate().expect("post-recovery invariants");
        for k in 0..1000 {
            assert_eq!(t2.get(k), Some(k * 2), "durable key {k} lost");
        }
        for k in 1000..1200 {
            assert_eq!(t2.get(k), None, "undurable key {k} survived");
        }
    }

    #[test]
    fn eadr_heap_disables_epoch_tracking() {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20).with_eadr(true)));
        let esys = EpochSys::format(heap, EpochConfig::manual());
        assert!(esys.is_disabled());
        let t = BdSpash::new(esys, Arc::new(Htm::new(HtmConfig::for_tests())));
        for k in 0..500 {
            t.insert(k, k);
        }
        // Everything committed survives an eADR crash, no advances needed.
        let img = t.epoch_sys().heap().crash();
        assert!(img.len_words() > 0);
        for k in 0..500 {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn large_values_use_eager_persist_path() {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
        let esys = EpochSys::format(heap, EpochConfig::manual());
        // 40-word values → 41-word payload → class 3 (1 KiB): "large".
        let t = BdSpash::with_value_words(esys, Arc::new(Htm::new(HtmConfig::for_tests())), 40);
        assert!(t.blocks_are_large());
        let before = t.epoch_sys().heap().stats().snapshot();
        // Distinct (cold) keys: eager persistence fires per insert.
        for k in 0..50 {
            t.insert(k, k);
        }
        let delta = t.epoch_sys().heap().stats().snapshot().since(&before);
        assert!(
            delta.lines_written_back >= 50,
            "large-cold inserts should flush eagerly: {}",
            delta.lines_written_back
        );
        // And the epoch flusher has (almost) nothing left to do for them.
        let flushed_before = t.epoch_sys().stats().snapshot().blocks_persisted;
        t.epoch_sys().advance();
        t.epoch_sys().advance();
        let flushed_after = t.epoch_sys().stats().snapshot().blocks_persisted;
        assert_eq!(
            flushed_after - flushed_before,
            0,
            "eagerly persisted blocks must not be re-flushed"
        );
    }
}
