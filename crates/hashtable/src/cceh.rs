//! CCEH: cache-line-conscious extendible hashing (Nam et al., FAST 2019).
//!
//! Fully persistent and strictly durable: segments live in NVM, every
//! insert/delete issues multiple `clwb`s and fences before returning
//! (the paper counts "at least 3 persist instructions per insert"), and
//! failure atomicity needs no logging — recovery reconstructs the
//! directory from the segments' persisted local depths, preferring
//! deeper (split-child) segments over their stale parents.
//!
//! Concurrency control: searches are lock-free (meta-bit-last publication
//! ordering); updates take a per-segment lock from a striped DRAM array;
//! splits and directory doubling take the directory's write lock.

use crate::hash64;
use htm_sim::sync::{Mutex, RwLock};
use nvm_sim::{NvmAddr, NvmHeap};
use persist_alloc::{Header, PAlloc, HDR_WORDS};
use std::sync::Arc;

/// Block tag for CCEH segments.
pub const CCEH_SEG_TAG: u64 = 0x4343_4548; // "CCEH"

const SEG_PAYLOAD: u64 = 508;
const SEG_DEPTH: u64 = 0;
const SEG_VALID: u64 = 1;
const SEG_BUCKETS: u64 = 8;
const BUCKET_WORDS: u64 = 8;
const BUCKET_ENTRIES: u64 = 3;
const NBUCKETS: u64 = (SEG_PAYLOAD - SEG_BUCKETS) / BUCKET_WORDS;

/// Striped per-segment update locks.
const SEG_LOCKS: usize = 256;

struct Directory {
    global_depth: u32,
    segments: Vec<NvmAddr>,
}

/// The strictly durable extendible hash table.
pub struct Cceh {
    heap: Arc<NvmHeap>,
    alloc: Arc<PAlloc>,
    dir: RwLock<Directory>,
    seg_locks: Box<[Mutex<()>]>,
}

impl Cceh {
    pub fn new(heap: Arc<NvmHeap>) -> Self {
        let alloc = Arc::new(PAlloc::new(Arc::clone(&heap)));
        let s0 = Self::new_segment(&heap, &alloc, 1);
        let s1 = Self::new_segment(&heap, &alloc, 1);
        Self {
            heap,
            alloc,
            dir: RwLock::new(Directory {
                global_depth: 1,
                segments: vec![s0, s1],
            }),
            seg_locks: (0..SEG_LOCKS).map(|_| Mutex::new(())).collect(),
        }
    }

    fn new_segment(heap: &NvmHeap, alloc: &PAlloc, depth: u32) -> NvmAddr {
        let seg = alloc.alloc_for_payload(SEG_PAYLOAD);
        Header::set_tag(heap, seg, CCEH_SEG_TAG);
        Header::set_epoch(heap, seg, 0);
        heap.write(seg.offset(HDR_WORDS + SEG_DEPTH), depth as u64);
        heap.write(seg.offset(HDR_WORDS + SEG_VALID), 1);
        heap.persist_range(seg, HDR_WORDS + SEG_BUCKETS);
        heap.fence();
        seg
    }

    pub fn heap(&self) -> &Arc<NvmHeap> {
        &self.heap
    }

    pub fn nvm_bytes(&self) -> u64 {
        self.alloc.stats().bytes_in_use()
    }

    #[inline]
    fn bw(&self, seg: NvmAddr, bucket: u64, w: u64) -> NvmAddr {
        seg.offset(HDR_WORDS + SEG_BUCKETS + bucket * BUCKET_WORDS + w)
    }

    #[inline]
    fn bucket_of(h: u64) -> u64 {
        (h >> 32) % NBUCKETS
    }

    #[inline]
    fn seg_lock(&self, seg: NvmAddr) -> &Mutex<()> {
        &self.seg_locks[(hash64(seg.0) as usize) % SEG_LOCKS]
    }

    /// Inserts or updates; returns the previous value. Strictly durable:
    /// the pair and its metadata are on media when this returns.
    pub fn insert(&self, key: u64, value: u64) -> Option<u64> {
        let h = hash64(key);
        loop {
            let dir = self.dir.read();
            let seg = dir.segments[(h & ((1 << dir.global_depth) - 1)) as usize];
            let _sl = self.seg_lock(seg).lock();
            let bucket = Self::bucket_of(h);
            let meta_a = self.bw(seg, bucket, 0);
            let meta = self.heap.read(meta_a);
            // Update in place?
            for i in 0..BUCKET_ENTRIES {
                if meta & (1 << i) != 0 && self.heap.read(self.bw(seg, bucket, 1 + 2 * i)) == key {
                    let va = self.bw(seg, bucket, 2 + 2 * i);
                    let old = self.heap.read(va);
                    self.heap.write(va, value);
                    self.heap.clwb(va);
                    self.heap.fence();
                    return Some(old);
                }
            }
            // Fresh slot?
            if let Some(i) = (0..BUCKET_ENTRIES).find(|i| meta & (1 << i) == 0) {
                // CCEH's persistence schedule: key, value, then the meta
                // bit that publishes them — each written back, with a
                // fence before the publication so recovery never sees a
                // set bit over garbage.
                let ka = self.bw(seg, bucket, 1 + 2 * i);
                let va = self.bw(seg, bucket, 2 + 2 * i);
                self.heap.write(ka, key);
                self.heap.clwb(ka);
                self.heap.write(va, value);
                self.heap.clwb(va);
                self.heap.fence();
                self.heap.write(meta_a, meta | (1 << i));
                self.heap.clwb(meta_a);
                self.heap.fence();
                return None;
            }
            // Bucket full: split this segment.
            drop(_sl);
            drop(dir);
            self.split(h);
        }
    }

    /// Lock-free search.
    pub fn get(&self, key: u64) -> Option<u64> {
        let h = hash64(key);
        let dir = self.dir.read();
        let seg = dir.segments[(h & ((1 << dir.global_depth) - 1)) as usize];
        let bucket = Self::bucket_of(h);
        let meta = self.heap.read(self.bw(seg, bucket, 0));
        for i in 0..BUCKET_ENTRIES {
            if meta & (1 << i) != 0 && self.heap.read(self.bw(seg, bucket, 1 + 2 * i)) == key {
                return Some(self.heap.read(self.bw(seg, bucket, 2 + 2 * i)));
            }
        }
        None
    }

    /// Removes `key`, returning its value. Durable on return.
    pub fn remove(&self, key: u64) -> Option<u64> {
        let h = hash64(key);
        let dir = self.dir.read();
        let seg = dir.segments[(h & ((1 << dir.global_depth) - 1)) as usize];
        let _sl = self.seg_lock(seg).lock();
        let bucket = Self::bucket_of(h);
        let meta_a = self.bw(seg, bucket, 0);
        let meta = self.heap.read(meta_a);
        for i in 0..BUCKET_ENTRIES {
            if meta & (1 << i) != 0 && self.heap.read(self.bw(seg, bucket, 1 + 2 * i)) == key {
                let v = self.heap.read(self.bw(seg, bucket, 2 + 2 * i));
                self.heap.write(meta_a, meta & !(1 << i));
                self.heap.clwb(meta_a);
                self.heap.fence();
                return Some(v);
            }
        }
        None
    }

    fn split(&self, h: u64) {
        let mut dir = self.dir.write();
        let mask = (1u64 << dir.global_depth) - 1;
        let idx = (h & mask) as usize;
        let old = dir.segments[idx];
        let ld = self.heap.read(old.offset(HDR_WORDS + SEG_DEPTH)) as u32;
        if ld == dir.global_depth {
            let n = dir.segments.len();
            let mut segs = Vec::with_capacity(2 * n);
            segs.extend_from_slice(&dir.segments);
            segs.extend_from_slice(&dir.segments);
            dir.segments = segs;
            dir.global_depth += 1;
        }
        let a = Self::new_segment(&self.heap, &self.alloc, ld + 1);
        let b = Self::new_segment(&self.heap, &self.alloc, ld + 1);
        for bucket in 0..NBUCKETS {
            let meta = self.heap.read(self.bw(old, bucket, 0));
            for i in 0..BUCKET_ENTRIES {
                if meta & (1 << i) == 0 {
                    continue;
                }
                let k = self.heap.read(self.bw(old, bucket, 1 + 2 * i));
                let v = self.heap.read(self.bw(old, bucket, 2 + 2 * i));
                let hk = hash64(k);
                let tgt = if hk & (1 << ld) == 0 { a } else { b };
                let tb = Self::bucket_of(hk);
                let tmeta = self.heap.read(self.bw(tgt, tb, 0));
                let slot = (0..BUCKET_ENTRIES)
                    .find(|j| tmeta & (1 << j) == 0)
                    .expect("split target bucket overflow");
                self.heap.write(self.bw(tgt, tb, 1 + 2 * slot), k);
                self.heap.write(self.bw(tgt, tb, 2 + 2 * slot), v);
                self.heap.write(self.bw(tgt, tb, 0), tmeta | (1 << slot));
            }
        }
        // Persist children completely, *then* publish and retire the
        // parent. A crash in between leaves a recoverable state: the
        // deeper children shadow the parent wherever they are valid.
        self.heap.persist_range(a, HDR_WORDS + SEG_PAYLOAD);
        self.heap.persist_range(b, HDR_WORDS + SEG_PAYLOAD);
        self.heap.fence();
        let gd = dir.global_depth;
        for e in 0..(1usize << gd) {
            if dir.segments[e] == old {
                dir.segments[e] = if (e as u64) & (1 << ld) == 0 { a } else { b };
            }
        }
        self.alloc.free(old); // FREE header is flushed by the allocator
    }

    /// Post-crash recovery: rebuilds the directory from segment depths.
    pub fn recover(heap: Arc<NvmHeap>) -> Cceh {
        let (alloc, blocks) = PAlloc::recover(Arc::clone(&heap));
        let alloc = Arc::new(alloc);
        let mut segs: Vec<(NvmAddr, u32)> = Vec::new();
        let mut max_depth = 1;
        for b in &blocks {
            if b.tag != CCEH_SEG_TAG {
                continue;
            }
            if heap.read(b.addr.offset(HDR_WORDS + SEG_VALID)) != 1 {
                alloc.free(b.addr);
                continue;
            }
            let ld = heap.read(b.addr.offset(HDR_WORDS + SEG_DEPTH)) as u32;
            max_depth = max_depth.max(ld);
            segs.push((b.addr, ld));
        }
        let gd = max_depth;
        let mut directory = vec![(NvmAddr::NULL, 0u32); 1 << gd];
        for &(seg, ld) in &segs {
            // Derive the segment's prefix once from its first stored key,
            // then write exactly its 2^(gd-ld) matching slots: linear in
            // directory size instead of (segments x slots) probing.
            let Some(prefix) = Self::segment_prefix(&heap, seg, ld) else {
                continue; // empty segment: unrecoverable prefix
            };
            let step = 1u64 << ld;
            let mut e = prefix;
            while e < (1u64 << gd) {
                let slot = &mut directory[e as usize];
                if ld >= slot.1 {
                    *slot = (seg, ld);
                }
                e += step;
            }
        }
        for slot in directory.iter_mut() {
            if slot.0.is_null() {
                *slot = (Self::new_segment(&heap, &alloc, gd), gd);
            }
        }
        // Free shadowed parents (valid but unreferenced).
        let referenced: std::collections::HashSet<NvmAddr> =
            directory.iter().map(|&(s, _)| s).collect();
        for &(seg, _) in &segs {
            if !referenced.contains(&seg) {
                alloc.free(seg);
            }
        }
        Cceh {
            heap,
            alloc,
            dir: RwLock::new(Directory {
                global_depth: gd,
                segments: directory.into_iter().map(|(s, _)| s).collect(),
            }),
            seg_locks: (0..SEG_LOCKS).map(|_| Mutex::new(())).collect(),
        }
    }

    /// The directory prefix of a segment of depth `ld` (low `ld` bits of
    /// any stored key's hash); `None` for empty segments.
    fn segment_prefix(heap: &NvmHeap, seg: NvmAddr, ld: u32) -> Option<u64> {
        let mask = (1u64 << ld) - 1;
        for bucket in 0..NBUCKETS {
            let meta = heap.read(seg.offset(HDR_WORDS + SEG_BUCKETS + bucket * BUCKET_WORDS));
            for i in 0..BUCKET_ENTRIES {
                if meta & (1 << i) != 0 {
                    let k = heap.read(
                        seg.offset(HDR_WORDS + SEG_BUCKETS + bucket * BUCKET_WORDS + 1 + 2 * i),
                    );
                    return Some(hash64(k) & mask);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_sim::NvmConfig;
    use std::collections::HashMap;

    fn table() -> Cceh {
        Cceh::new(Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20))))
    }

    #[test]
    fn basic_semantics() {
        let t = table();
        assert_eq!(t.insert(3, 30), None);
        assert_eq!(t.insert(3, 31), Some(30));
        assert_eq!(t.get(3), Some(31));
        assert_eq!(t.remove(3), Some(31));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn matches_oracle() {
        let t = table();
        let mut oracle = HashMap::new();
        let mut rng = 13u64;
        for i in 0..15_000u64 {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            let key = rng % 4096;
            match rng % 3 {
                0 => assert_eq!(t.insert(key, i), oracle.insert(key, i)),
                1 => assert_eq!(t.remove(key), oracle.remove(&key)),
                _ => assert_eq!(t.get(key), oracle.get(&key).copied()),
            }
        }
    }

    #[test]
    fn every_insert_is_immediately_durable() {
        let t = table();
        for k in 0..3000 {
            t.insert(k, k + 100);
        }
        // Crash with no further cooperation: everything must survive.
        let heap2 = Arc::new(NvmHeap::from_image(t.heap().crash()));
        let t2 = Cceh::recover(heap2);
        for k in 0..3000 {
            assert_eq!(t2.get(k), Some(k + 100), "durable insert {k} lost");
        }
    }

    #[test]
    fn removes_are_immediately_durable() {
        let t = table();
        for k in 0..500 {
            t.insert(k, k);
        }
        for k in 0..250 {
            t.remove(k);
        }
        let t2 = Cceh::recover(Arc::new(NvmHeap::from_image(t.heap().crash())));
        for k in 0..250 {
            assert_eq!(t2.get(k), None, "removed key {k} resurrected");
        }
        for k in 250..500 {
            assert_eq!(t2.get(k), Some(k));
        }
    }

    #[test]
    fn concurrent_inserts() {
        let t = Arc::new(table());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..3000u64 {
                        let k = tid * 1_000_000 + i;
                        t.insert(k, k ^ 7);
                    }
                });
            }
        });
        for tid in 0..4u64 {
            for i in 0..3000u64 {
                let k = tid * 1_000_000 + i;
                assert_eq!(t.get(k), Some(k ^ 7), "lost {k}");
            }
        }
    }

    #[test]
    fn insert_issues_several_flushes() {
        let t = table();
        // Warm segments so splits don't pollute the count.
        t.insert(0, 0);
        let before = t.heap().stats().snapshot();
        t.insert(1, 1);
        let delta = t.heap().stats().snapshot().since(&before);
        assert!(
            delta.flushes >= 3,
            "CCEH insert too cheap: {}",
            delta.flushes
        );
        assert!(delta.fences >= 2);
    }
}
