//! # hashtable: persistent hash tables, four regimes
//!
//! Section 4.3 of the BD-HTM paper (plus the Listing 1 walk-through of
//! §3):
//!
//! * [`BdhtHashMap`] — the paper's Listing 1 pedagogical table: a fixed
//!   bucket array in DRAM pointing at NVM KV blocks, every operation one
//!   hardware transaction, buffered durability via the epoch system.
//!   This is the reference implementation of the BDL-HTM strategy.
//! * [`Spash`] — the eADR-designed HTM hash table of Zhang et al. (ICDE
//!   2024): extendible directory → multi-bucket segments sized in
//!   XPLines, HTM for concurrency, a DRAM hotspot detector driving
//!   proactive cold-data write-back. Runs correctly on persistent-cache
//!   (eADR) heaps; on plain ADR it silently loses un-flushed data —
//!   which is exactly why BD-Spash exists.
//! * [`BdSpash`] — the §4.3 back-port: directory and buckets in DRAM,
//!   KV blocks in NVM under the epoch system. Large cold values are
//!   persisted immediately (optimizing cache residency and NVM
//!   bandwidth); small / hot values ride the epoch buffers. On an eADR
//!   heap the epoch system disables itself and BD-Spash behaves like
//!   Spash.
//! * [`Cceh`] — cache-line-conscious extendible hashing (Nam et al.,
//!   FAST 2019): fully persistent, per-segment reader-writer locks,
//!   lock-free probes, several write-backs and fences per insert.
//! * [`Plush`] — the write-optimized log-structured hash table (Vogel et
//!   al., VLDB 2022): DRAM root level, geometrically growing NVM levels,
//!   bucket overflow spills downward, and a write-ahead log persisted on
//!   the critical path of every update.

mod bdspash;
mod cceh;
mod hotspot;
mod listing1;
mod plush;
mod spash;

pub use bdspash::{BdSpash, BDSPASH_KV_TAG};
pub use cceh::Cceh;
pub use hotspot::HotspotDetector;
pub use listing1::{BdhtHashMap, LISTING1_KV_TAG};
pub use plush::Plush;
pub use spash::Spash;

/// 64-bit finalizer (splitmix64) used as the hash function everywhere in
/// this crate: full-avalanche, invertible, no allocation.
#[inline]
pub(crate) fn hash64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_spreads_sequential_keys() {
        let mut buckets = [0u32; 64];
        for k in 0..6400u64 {
            buckets[(hash64(k) % 64) as usize] += 1;
        }
        for &b in &buckets {
            assert!((60..=140).contains(&b), "poor spread: {buckets:?}");
        }
    }
}
