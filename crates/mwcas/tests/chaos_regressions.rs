//! Deterministic regressions for the MwCAS helping races root-caused
//! with the `htm_sim::chaos` harness (see DESIGN.md, "Root-causing the
//! skiplist quarantine").
//!
//! Each test drives one exact interleaving with chaos *gates* (one-shot
//! breakpoints at named sites) rather than seeds, so the schedule is
//! pinned regardless of OS scheduling. Against the pre-fix descriptor
//! these interleavings reproduced, deterministically:
//!
//! 1. the leaked-marker livelock (`read` helps a descriptor that no
//!    longer cleans up, forever) — the quarantined tests' hang shape;
//! 2. duplicate application of a decided operation after an ABA on a
//!    target word — the per-key value-corruption shape.
//!
//! The third quarantined shape (a crash in the reclamation path) is
//! seed-pinned at the skiplist level: `skiplist/tests/chaos_regressions`.
//!
//! Every body runs on a watched thread: a regression hangs the *body*
//! (that is the bug), and the watchdog turns that into a bounded failure
//! instead of wedging the suite.

use mwcas::{MwCasPool, MwTarget};
use nvm_sim::{NvmAddr, NvmConfig, NvmHeap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Pure-gate chaos config: no probabilistic yields or spins, so the
/// interleaving is exactly the one the gates dictate.
fn gates_only(seed: u64) -> htm_sim::chaos::Config {
    let mut c = htm_sim::chaos::Config::new(seed);
    c.yield_ppm = 0;
    c.spin_ppm = 0;
    c
}

fn with_watchdog(name: &'static str, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            body();
            let _ = tx.send(());
        })
        .expect("spawn watched body");
    if rx.recv_timeout(Duration::from_secs(60)).is_err() {
        panic!("{name}: wedged (> 60s) — the regression is back; worker leaked");
    }
}

fn setup() -> (Arc<NvmHeap>, Arc<MwCasPool>, NvmAddr, NvmAddr) {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(1 << 20)));
    let pool = Arc::new(MwCasPool::new(Arc::clone(&heap)));
    let (w0, w1) = (NvmAddr(100_000), NvmAddr(100_001));
    (heap, pool, w0, w1)
}

/// Shape 1 — the hang. A helper observes the marker of a still-pending
/// operation, then stalls. The owner's operation *fails* (a second
/// target mismatches), rolls back, and releases the descriptor. The
/// stale helper then finds the rolled-back word holding the expected old
/// value again.
///
/// Pre-fix the helper re-installed the full marker and bailed on the
/// FREE status without removing it, so every subsequent `read` of the
/// word helped a descriptor that never cleans up: a permanent livelock.
/// Post-fix the install is a conditional placeholder and every bail path
/// sweeps, so the word must come back clean.
#[test]
fn stale_helper_must_not_leak_a_marker_into_a_released_op() {
    with_watchdog("chaos-regression-hang", || {
        let (heap, pool, w0, w1) = setup();
        heap.word(w0).store(5, Ordering::SeqCst);
        heap.word(w1).store(8, Ordering::SeqCst);

        let session = htm_sim::chaos::arm(gates_only(0xBD1));
        session.close_once("mwcas::installed");
        session.close_once("mwcas::help_enter");
        session.close_once("mwcas::release");

        std::thread::scope(|s| {
            // Owner: installs its marker in w0, then fails on w1
            // (8 != 7), rolls w0 back, and releases the descriptor.
            let owner = {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    pool.mwcas(&[
                        MwTarget {
                            addr: w0,
                            old: 5,
                            new: 6,
                        },
                        MwTarget {
                            addr: w1,
                            old: 7,
                            new: 9,
                        },
                    ])
                })
            };
            session.await_parked("mwcas::installed", 1);

            // Helper: sees the marker in w0 and stalls at the very top
            // of the helping path, holding a snapshot of the operation.
            let helper = {
                let pool = Arc::clone(&pool);
                s.spawn(move || pool.read(w0))
            };
            session.await_parked("mwcas::help_enter", 1);

            // Owner runs to the release point: w0 is rolled back to 5,
            // the status is decided-FAILED.
            session.open("mwcas::installed");
            session.await_parked("mwcas::release", 1);

            // Owner transitions the status to FREE and blocks draining
            // the (still counted) helper; give it a moment so the
            // helper wakes to the post-release state.
            session.open("mwcas::release");
            std::thread::sleep(Duration::from_millis(100));

            // Stale helper resumes against the released descriptor.
            session.open("mwcas::help_enter");

            assert_eq!(helper.join().unwrap(), 5, "read must see the rollback");
            assert!(!owner.join().unwrap(), "owner's op must have failed");
        });

        // The words are clean: reads terminate and a fresh operation
        // succeeds (pre-fix this line livelocked on the leaked marker).
        assert_eq!(pool.read(w0), 5);
        assert_eq!(pool.read(w1), 8);
        assert!(pool.mwcas(&[MwTarget {
            addr: w0,
            old: 5,
            new: 7
        }]));
        assert_eq!(pool.read(w0), 7);
        drop(session);
    });
}

/// Shape 2 — the value race. The helper stalls while the operation is
/// pending; the operation commits (w0: 0 -> 5) and, before the
/// descriptor is released, an unrelated committed operation moves the
/// word back to the helper's expected old value (w0: 5 -> 0, an ABA).
///
/// Pre-fix the stale helper re-installed the committed operation's
/// marker into the ABA'd word and then finalized it a second time,
/// silently clobbering the later operation's committed write (w0 became
/// 5 again) — the quarantined tests' per-key invariant violation.
/// Post-fix the status gate refuses the install for a decided operation,
/// so the later write survives.
#[test]
fn stale_helper_must_not_reapply_a_decided_op_after_aba() {
    with_watchdog("chaos-regression-aba", || {
        let (heap, pool, w0, w1) = setup();
        heap.word(w0).store(0, Ordering::SeqCst);
        heap.word(w1).store(7, Ordering::SeqCst);

        let session = htm_sim::chaos::arm(gates_only(0xBD2));
        session.close_once("mwcas::installed");
        session.close_once("mwcas::help_enter");

        std::thread::scope(|s| {
            // Owner: {w0: 0 -> 5, w1: 7 -> 6}, parked mid-install so the
            // helper can observe the marker while the op is pending.
            let owner = {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    pool.mwcas(&[
                        MwTarget {
                            addr: w0,
                            old: 0,
                            new: 5,
                        },
                        MwTarget {
                            addr: w1,
                            old: 7,
                            new: 6,
                        },
                    ])
                })
            };
            session.await_parked("mwcas::installed", 1);

            let helper = {
                let pool = Arc::clone(&pool);
                s.spawn(move || pool.read(w0))
            };
            session.await_parked("mwcas::help_enter", 1);

            // Let the owner commit and park right before it releases the
            // descriptor: status is decided-COMMITTED, w0 == 5, w1 == 6.
            session.close_once("mwcas::release");
            session.open("mwcas::installed");
            session.await_parked("mwcas::release", 1);

            // Unrelated committed op ABAs w0 back to the helper's
            // snapshot value: 5 -> 0.
            assert!(pool.mwcas(&[MwTarget {
                addr: w0,
                old: 5,
                new: 0
            }]));
            assert_eq!(pool.read(w0), 0);

            // Stale helper resumes against the decided-but-unreleased
            // descriptor. Pre-fix it re-installed and re-finalized,
            // turning w0 back into 5.
            session.open("mwcas::help_enter");
            assert_eq!(
                helper.join().unwrap(),
                0,
                "helper's read must not resurrect the decided op's write"
            );

            session.open("mwcas::release");
            assert!(owner.join().unwrap(), "owner's op committed");
        });

        assert_eq!(pool.read(w0), 0, "the ABA write must survive");
        assert_eq!(pool.read(w1), 6, "the committed op's other word stays");
        drop(session);
    });
}
