//! Descriptor-based MwCAS / PMwCAS (Wang et al., ICDE 2018) with helping
//! and post-crash roll-forward / roll-back.

use htm_sim::chaos;
use htm_sim::sync::Mutex;
use nvm_sim::{NvmAddr, NvmHeap};
use persist_alloc::{Header, PAlloc, HDR_WORDS};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Maximum words a single (P)MwCAS may update. The Fig. 4 experiment
/// uses 2, 4 and 8; the DL-Skiplist links/unlinks whole towers with one
/// operation, requiring up to `2 * MAX_LEVEL` targets.
pub const MAX_TARGETS: usize = 32;

/// Block tag marking MwCAS descriptors for the recovery scan.
pub const MWCAS_DESC_TAG: u64 = 0x4D57_4341; // "MWCA"

/// One `(address, expected, new)` triple.
#[derive(Clone, Copy, Debug)]
pub struct MwTarget {
    pub addr: NvmAddr,
    pub old: u64,
    pub new: u64,
}

impl MwTarget {
    pub fn new(addr: NvmAddr, old: u64, new: u64) -> Self {
        debug_assert!(
            old & MARK == 0 && new & MARK == 0,
            "values must leave bit 63 clear"
        );
        Self { addr, old, new }
    }
}

// Descriptor payload layout (word indices within the block payload).
const D_SEQ: u64 = 0;
const D_STATUS: u64 = 1;
const D_COUNT: u64 = 2;
/// Volatile count of helpers currently inside `help` for this
/// descriptor. The owner waits for it to drain before recycling, so a
/// stale helper can never install markers into, or finalize words of, a
/// *reused* descriptor (the classic descriptor-reclamation race; Wang et
/// al. solve it with an epoch-based descriptor pool).
const D_HELPERS: u64 = 3;
const D_TRIPLES: u64 = 4; // then 3 words per target: addr, old, new
const DESC_PAYLOAD_WORDS: u64 = D_TRIPLES + 3 * MAX_TARGETS as u64;

const ST_PENDING: u64 = 0;
const ST_COMMITTED: u64 = 1;
const ST_FAILED: u64 = 2;
const ST_FREE: u64 = 3;

/// The status word embeds the descriptor's sequence number so that a
/// stale helper's status CAS can never hit a recycled descriptor
/// (otherwise a helper that validated the sequence just before the owner
/// recycled could prematurely commit or fail the *next* operation,
/// allowing partial application).
#[inline]
fn st_word(seq: u64, code: u64) -> u64 {
    (seq << 2) | code
}

#[inline]
fn st_code(word: u64) -> u64 {
    word & 0b11
}

#[inline]
fn st_seq(word: u64) -> u64 {
    word >> 2
}

/// Bit 63 marks a word as holding a descriptor pointer.
const MARK: u64 = 1 << 63;
/// Bit 62 additionally marks an *intermediate* (conditional) install:
/// an RDCSS-style placeholder that is promoted to the full marker only
/// while the operation's status is still `(seq, PENDING)`. A decided or
/// recycled operation's placeholder is rolled back to the displaced old
/// value instead — so a late helper can never (re)install a full marker
/// for an operation that already completed, which is the race that
/// produced both the leaked-marker hang and the duplicate-application
/// value corruption (see DESIGN.md).
const RD: u64 = 1 << 62;
const SEQ_SHIFT: u32 = 48;
/// 14-bit sequence tag (bit 62 now carries [`RD`]). Wraps at 16384:
/// like the original 15-bit tag this is an ABA bound, not a proof —
/// documented in the memory-ordering inventory.
const SEQ_MASK: u64 = 0x3FFF;
const ADDR_MASK: u64 = (1 << SEQ_SHIFT) - 1;

#[inline]
fn marked(desc: NvmAddr, seq: u64) -> u64 {
    debug_assert!(desc.0 <= ADDR_MASK);
    MARK | ((seq & SEQ_MASK) << SEQ_SHIFT) | desc.0
}

#[inline]
fn rd_marked(desc: NvmAddr, seq: u64) -> u64 {
    marked(desc, seq) | RD
}

#[inline]
fn is_marked(v: u64) -> bool {
    v & MARK != 0
}

/// Decodes either marker flavor; [`RD`] sits outside both fields.
#[inline]
fn unmark(v: u64) -> (NvmAddr, u64) {
    (NvmAddr(v & ADDR_MASK), (v >> SEQ_SHIFT) & SEQ_MASK)
}

/// A pool of per-thread reusable NVM descriptors plus the (P)MwCAS
/// algorithms. Values stored through the pool must leave bit 63 clear
/// (it distinguishes descriptor pointers from data).
pub struct MwCasPool {
    heap: Arc<NvmHeap>,
    alloc: Arc<PAlloc>,
    /// Lazily created per-thread descriptor blocks.
    descs: Box<[Mutex<Option<NvmAddr>>]>,
}

impl MwCasPool {
    /// Creates a pool with its own allocator over `heap`.
    pub fn new(heap: Arc<NvmHeap>) -> Self {
        let alloc = Arc::new(PAlloc::new(Arc::clone(&heap)));
        Self::with_alloc(heap, alloc)
    }

    /// Creates a pool over an existing allocator (sharing a heap with a
    /// data structure, as DL-Skiplist does).
    pub fn with_alloc(heap: Arc<NvmHeap>, alloc: Arc<PAlloc>) -> Self {
        Self {
            heap,
            alloc,
            descs: (0..htm_sim::max_threads())
                .map(|_| Mutex::new(None))
                .collect(),
        }
    }

    pub fn heap(&self) -> &Arc<NvmHeap> {
        &self.heap
    }

    fn my_descriptor(&self) -> NvmAddr {
        let tid = htm_sim::thread_id();
        let mut slot = self.descs[tid].lock();
        if let Some(d) = *slot {
            return d;
        }
        let blk = self.alloc.alloc_for_payload(DESC_PAYLOAD_WORDS);
        Header::set_tag(&self.heap, blk, MWCAS_DESC_TAG);
        Header::set_epoch(&self.heap, blk, 0); // descriptors are infrastructure
        self.heap
            .word(pw(blk, D_STATUS))
            .store(st_word(0, ST_FREE), Ordering::Release);
        self.heap.persist_range(blk, HDR_WORDS + DESC_PAYLOAD_WORDS);
        self.heap.fence();
        *slot = Some(blk);
        blk
    }

    /// Transient multi-word CAS: linearizable and lock-free, no
    /// persistence. Returns `true` on success (all `old` values matched).
    pub fn mwcas(&self, targets: &[MwTarget]) -> bool {
        self.run(targets, false)
    }

    /// Persistent multi-word CAS: additionally guarantees that after a
    /// crash the operation is completed (if its commit record persisted)
    /// or rolled back, via [`MwCasPool::recover`].
    pub fn pmwcas(&self, targets: &[MwTarget]) -> bool {
        self.run(targets, true)
    }

    fn run(&self, targets: &[MwTarget], persist: bool) -> bool {
        assert!(!targets.is_empty() && targets.len() <= MAX_TARGETS);
        let desc = self.my_descriptor();
        let h = &*self.heap;

        // Quiesce helpers from the *previous* operation before touching
        // a single descriptor word. A helper that validated the old
        // sequence holds a snapshot of the old triples; rewriting them
        // while it is still counted would let it act on torn state. The
        // drain below (after FREE) bounds how long this wait can be.
        while h.word(pw(desc, D_HELPERS)).load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        chaos::point("mwcas::reinit");

        // Initialize the descriptor with a fresh sequence number and the
        // targets in canonical (address) order.
        let seq = (h.word(pw(desc, D_SEQ)).load(Ordering::Acquire) + 1) & SEQ_MASK;
        let mut sorted: Vec<MwTarget> = targets.to_vec();
        sorted.sort_by_key(|t| t.addr);
        debug_assert!(
            sorted.windows(2).all(|w| w[0].addr != w[1].addr),
            "duplicate MwCAS target"
        );
        h.write(pw(desc, D_SEQ), seq);
        h.write(pw(desc, D_STATUS), st_word(seq, ST_PENDING));
        h.write(pw(desc, D_COUNT), sorted.len() as u64);
        for (i, t) in sorted.iter().enumerate() {
            let base = D_TRIPLES + 3 * i as u64;
            h.write(pw(desc, base), t.addr.0);
            h.write(pw(desc, base + 1), t.old);
            h.write(pw(desc, base + 2), t.new);
        }
        if persist {
            // The descriptor must be durable before any marked pointer to
            // it can appear in the heap. Only the used prefix is flushed.
            h.persist_range(desc, HDR_WORDS + D_TRIPLES + 3 * sorted.len() as u64);
            h.fence();
        }

        let committed = self.help_inner(desc, seq, persist);

        // Release the descriptor for reuse (recovery ignores FREE ones).
        // A CAS from the decided status, not a blind store: the FREE
        // transition participates in the same SeqCst RMW total order the
        // helpers' status gates read, so a helper that still observes
        // PENDING is ordered before this release — and the owner's
        // `help_inner` can only have returned with status decided.
        chaos::point("mwcas::release");
        let decided = st_word(seq, if committed { ST_COMMITTED } else { ST_FAILED });
        let released = h
            .cas(pw(desc, D_STATUS), decided, st_word(seq, ST_FREE))
            .is_ok();
        debug_assert!(released, "owner must win the FREE transition");
        if persist {
            h.clwb(pw(desc, D_STATUS));
            h.fence();
        }
        // Drain again after FREE: helpers that raced past the gate will
        // observe FREE, sweep their markers, and exit; no helper may
        // still be acting on this sequence when the next operation
        // reinitializes the descriptor.
        while h.word(pw(desc, D_HELPERS)).load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        committed
    }

    /// Entry point for non-owning helpers: brackets `help_inner` with the
    /// helpers counter the owner drains before recycling.
    fn help(&self, desc: NvmAddr, seq: u64, persist: bool) -> bool {
        let ctr = self.heap.word(pw(desc, D_HELPERS));
        ctr.fetch_add(1, Ordering::SeqCst);
        chaos::point("mwcas::help_enter");
        let r = self.help_inner(desc, seq, persist);
        ctr.fetch_sub(1, Ordering::SeqCst);
        r
    }

    /// Drives the descriptor `desc`/`seq` to completion (both phases).
    /// Reentrant: called by the owner (directly) and by helping threads
    /// (through [`MwCasPool::help`]). Returns whether the operation
    /// committed.
    ///
    /// The contract that keeps helping safe (root-caused with the chaos
    /// harness; DESIGN.md has the full inventory):
    ///
    /// 1. The triples are *snapshotted* first and the sequence number
    ///    validated after — the owner publishes `D_SEQ` before any other
    ///    word of a new operation, so a snapshot that read any newer
    ///    word fails the validation and bails before acting.
    /// 2. Every install is *conditional* (an [`RD`] placeholder promoted
    ///    only while status is `(seq, PENDING)`), so no full marker is
    ///    ever (re)installed for a decided operation.
    /// 3. Every exit path taken after validation either finalizes the
    ///    operation (phase 2b) or [`MwCasPool::sweep`]s — a helper never
    ///    leaves its own marker behind, which is what used to hang
    ///    `read` forever on a descriptor that no longer helps.
    fn help_inner(&self, desc: NvmAddr, seq: u64, persist: bool) -> bool {
        let h = &*self.heap;
        let me = marked(desc, seq);
        let rdv = rd_marked(desc, seq);
        let status_w = pw(desc, D_STATUS);

        // Snapshot the descriptor payload, then validate the sequence.
        let count = (h.word(pw(desc, D_COUNT)).load(Ordering::Acquire) as usize).min(MAX_TARGETS);
        let mut snap = [MwTarget {
            addr: NvmAddr(0),
            old: 0,
            new: 0,
        }; MAX_TARGETS];
        for (i, t) in snap.iter_mut().enumerate().take(count) {
            let base = D_TRIPLES + 3 * i as u64;
            t.addr = NvmAddr(h.word(pw(desc, base)).load(Ordering::Acquire));
            t.old = h.word(pw(desc, base + 1)).load(Ordering::Acquire);
            t.new = h.word(pw(desc, base + 2)).load(Ordering::Acquire);
        }
        if (h.word(pw(desc, D_SEQ)).load(Ordering::SeqCst) & SEQ_MASK) != seq {
            return false; // recycled before we read a consistent payload
        }
        let triples = &snap[..count];

        // Phase 1: install the marked pointer in every target, in order.
        let mut status_goal = ST_COMMITTED;
        'install: for t in triples {
            loop {
                // Status gate: never begin an install for an operation
                // that is already decided. SeqCst so this load sits in
                // the same total order as the decide/release RMWs.
                let st = h.word(status_w).load(Ordering::SeqCst);
                if st_seq(st) != seq || st_code(st) == ST_FREE {
                    self.sweep(triples, me, rdv);
                    return false;
                }
                if st_code(st) != ST_PENDING {
                    break 'install; // decided: go finalize
                }
                chaos::point("mwcas::install");
                let cur = h.word(t.addr).load(Ordering::Acquire);
                if cur == me {
                    break; // installed (possibly by a helper)
                }
                if cur == rdv {
                    // Our operation's placeholder: resolve it.
                    self.complete_install(status_w, seq, t, me, rdv, persist);
                    continue;
                }
                if is_marked(cur) {
                    // Help the conflicting operation first.
                    let (other, oseq) = unmark(cur);
                    self.help(other, oseq, persist);
                    continue;
                }
                if cur != t.old {
                    // A competitor changed the word: we fail.
                    status_goal = ST_FAILED;
                    break 'install;
                }
                if h.cas(t.addr, t.old, rdv).is_ok() {
                    chaos::point("mwcas::installed");
                    self.complete_install(status_w, seq, t, me, rdv, persist);
                    // Loop: sees `me` if promoted, or re-gates if the
                    // operation got decided while we installed.
                }
            }
        }

        // Phase 2a: decide. A single CAS publishes the outcome; whoever
        // loses the race reads the winner's verdict. The expected value
        // carries `seq`, so a CAS against a recycled descriptor misses.
        chaos::point("mwcas::decide");
        let _ = h.cas(
            status_w,
            st_word(seq, ST_PENDING),
            st_word(seq, status_goal),
        );
        let status = h.word(status_w).load(Ordering::SeqCst);
        if st_seq(status) != seq || st_code(status) == ST_FREE {
            self.sweep(triples, me, rdv);
            return false; // recycled under us: undo anything we left
        }
        if persist {
            h.clwb(status_w);
            h.fence();
        }
        let committed = st_code(status) == ST_COMMITTED;
        chaos::point("mwcas::finalize");

        // Phase 2b: replace every installed marker with its final value,
        // from the validated snapshot. A placeholder found here belongs
        // to an install that lost the decision race: roll it back.
        for t in triples {
            let finalv = if committed { t.new } else { t.old };
            if h.cas(t.addr, me, finalv).is_ok() && persist {
                h.clwb(t.addr);
            }
            let _ = h.cas(t.addr, rdv, t.old);
        }
        if persist {
            h.fence();
        }
        committed
    }

    /// Completes a conditional install: promotes the placeholder to the
    /// full marker if the operation is still `(seq, PENDING)`, restores
    /// the displaced old value otherwise. Idempotent and safe to race:
    /// whichever resolution wins, the other CAS misses.
    fn complete_install(
        &self,
        status_w: NvmAddr,
        seq: u64,
        t: &MwTarget,
        me: u64,
        rdv: u64,
        persist: bool,
    ) {
        let h = &*self.heap;
        let st = h.word(status_w).load(Ordering::SeqCst);
        if st == st_word(seq, ST_PENDING) {
            if h.cas(t.addr, rdv, me).is_ok() && persist {
                h.clwb(t.addr);
                h.fence();
            }
        } else {
            let _ = h.cas(t.addr, rdv, t.old);
        }
    }

    /// Removes every marker (placeholder or promoted) this operation may
    /// still hold in its targets, restoring the snapshot's old values.
    /// Called on every post-validation bail path so a helper that raced
    /// the owner's release can never strand a marker — the failure mode
    /// behind the quarantined hang.
    fn sweep(&self, triples: &[MwTarget], me: u64, rdv: u64) {
        chaos::point("mwcas::sweep");
        let h = &*self.heap;
        for t in triples {
            let _ = h.cas(t.addr, rdv, t.old);
            let _ = h.cas(t.addr, me, t.old);
        }
    }

    /// Resolves a word to its logical value, helping any in-flight
    /// operation that has a marker installed there.
    pub fn read(&self, addr: NvmAddr) -> u64 {
        loop {
            let v = self.heap.word(addr).load(Ordering::Acquire);
            if !is_marked(v) {
                return v;
            }
            chaos::point("mwcas::read_help");
            let (desc, seq) = unmark(v);
            self.help(desc, seq, false);
        }
    }

    /// Post-crash recovery: rolls every in-flight persistent descriptor
    /// forward (if its `COMMITTED` record persisted) or backward.
    /// `blocks` is the heap scan (e.g. from
    /// [`PAlloc::recover`](persist_alloc::PAlloc::recover)); only blocks
    /// tagged [`MWCAS_DESC_TAG`] are touched. Returns the number of
    /// descriptors rolled (forward + backward).
    pub fn recover(heap: &NvmHeap, blocks: &[persist_alloc::RecoveredBlock]) -> (usize, usize) {
        let mut fwd = 0;
        let mut back = 0;
        for b in blocks {
            if b.tag != MWCAS_DESC_TAG {
                continue;
            }
            let desc = b.addr;
            let status = heap.word(pw(desc, D_STATUS)).load(Ordering::Acquire);
            let seq = heap.word(pw(desc, D_SEQ)).load(Ordering::Acquire) & SEQ_MASK;
            // Only descriptors whose persisted status belongs to their
            // persisted sequence are in flight.
            if st_seq(status) != seq || st_code(status) == ST_FREE {
                continue;
            }
            let me = marked(desc, seq);
            let rdv = rd_marked(desc, seq);
            let count = heap.word(pw(desc, D_COUNT)).load(Ordering::Acquire) as usize;
            let commit = st_code(status) == ST_COMMITTED;
            for i in 0..count.min(MAX_TARGETS) {
                let base = D_TRIPLES + 3 * i as u64;
                let addr = NvmAddr(heap.word(pw(desc, base)).load(Ordering::Acquire));
                let old = heap.word(pw(desc, base + 1)).load(Ordering::Acquire);
                let new = heap.word(pw(desc, base + 2)).load(Ordering::Acquire);
                let cur = heap.word(addr).load(Ordering::Acquire);
                if cur == me {
                    heap.write(addr, if commit { new } else { old });
                    heap.clwb(addr);
                } else if cur == rdv {
                    // A placeholder never counted toward the decision:
                    // the displaced old value is the logical one, even
                    // for a committed operation (late install).
                    heap.write(addr, old);
                    heap.clwb(addr);
                }
            }
            heap.write(pw(desc, D_STATUS), st_word(seq, ST_FREE));
            heap.clwb(pw(desc, D_STATUS));
            heap.fence();
            if commit {
                fwd += 1;
            } else {
                back += 1;
            }
        }
        (fwd, back)
    }
}

/// Payload word address within a descriptor block.
#[inline]
fn pw(blk: NvmAddr, idx: u64) -> NvmAddr {
    blk.offset(HDR_WORDS + idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_sim::NvmConfig;

    fn setup() -> (Arc<NvmHeap>, MwCasPool) {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(8 << 20)));
        let pool = MwCasPool::new(Arc::clone(&heap));
        (heap, pool)
    }

    /// Slots far from the allocator's extents, for raw word targets.
    fn slots(heap: &NvmHeap, n: u64) -> Vec<NvmAddr> {
        let top = heap.capacity_words();
        (0..n).map(|i| NvmAddr(top - 8 * (i + 1))).collect()
    }

    #[test]
    fn mwcas_succeeds_and_fails_atomically() {
        let (heap, pool) = setup();
        let s = slots(&heap, 2);
        assert!(pool.mwcas(&[MwTarget::new(s[0], 0, 5), MwTarget::new(s[1], 0, 6)]));
        assert_eq!(pool.read(s[0]), 5);
        assert_eq!(pool.read(s[1]), 6);
        // One stale expectation: nothing changes.
        assert!(!pool.mwcas(&[MwTarget::new(s[0], 5, 7), MwTarget::new(s[1], 99, 8)]));
        assert_eq!(pool.read(s[0]), 5);
        assert_eq!(pool.read(s[1]), 6);
    }

    #[test]
    fn pmwcas_success_is_durable() {
        let (heap, pool) = setup();
        let s = slots(&heap, 4);
        let ts: Vec<MwTarget> = s.iter().map(|&a| MwTarget::new(a, 0, a.0)).collect();
        assert!(pool.pmwcas(&ts));
        let img = heap.crash();
        for &a in &s {
            assert_eq!(img.word(a), a.0, "PMwCAS result lost at {a:?}");
        }
    }

    #[test]
    fn concurrent_mwcas_transfers_conserve_sum() {
        // Classic bank-transfer test: N accounts, random 2-word transfers.
        let (heap, pool) = setup();
        let pool = Arc::new(pool);
        let accounts = slots(&heap, 16);
        for &a in &accounts {
            heap.write(a, 1000);
        }
        let threads = 4;
        let iters = 3000;
        std::thread::scope(|sc| {
            for t in 0..threads {
                let pool = Arc::clone(&pool);
                let accounts = accounts.clone();
                sc.spawn(move || {
                    let mut rng = 0x1234_5678u64 + t as u64;
                    let mut next = || {
                        rng ^= rng >> 12;
                        rng ^= rng << 25;
                        rng ^= rng >> 27;
                        rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
                    };
                    for _ in 0..iters {
                        let i = (next() % 16) as usize;
                        let mut j = (next() % 16) as usize;
                        if i == j {
                            j = (j + 1) % 16;
                        }
                        // Read consistent snapshot, attempt transfer of 1.
                        let a = pool.read(accounts[i]);
                        let b = pool.read(accounts[j]);
                        if a == 0 {
                            continue;
                        }
                        let _ = pool.mwcas(&[
                            MwTarget::new(accounts[i], a, a - 1),
                            MwTarget::new(accounts[j], b, b + 1),
                        ]);
                    }
                });
            }
        });
        let total: u64 = accounts.iter().map(|&a| pool.read(a)).sum();
        assert_eq!(total, 16 * 1000, "transfers lost or duplicated money");
    }

    #[test]
    fn helping_resolves_markers_left_by_peers() {
        // Install phase leaves markers; a concurrent read must resolve
        // them rather than return the marker bits.
        let (heap, pool) = setup();
        let pool = Arc::new(pool);
        let s = slots(&heap, 8);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|sc| {
            for t in 0..2 {
                let pool = Arc::clone(&pool);
                let s = s.clone();
                let stop = Arc::clone(&stop);
                sc.spawn(move || {
                    let mut v = 1u64 + t;
                    while !stop.load(Ordering::Relaxed) {
                        let cur: Vec<u64> = s.iter().map(|&a| pool.read(a)).collect();
                        let ts: Vec<MwTarget> = s
                            .iter()
                            .zip(&cur)
                            .map(|(&a, &c)| MwTarget::new(a, c, v & !(1 << 63)))
                            .collect();
                        let _ = pool.mwcas(&ts);
                        v = v.wrapping_add(2);
                    }
                });
            }
            let pool2 = Arc::clone(&pool);
            let s2 = s.clone();
            let stop2 = Arc::clone(&stop);
            sc.spawn(move || {
                for _ in 0..20_000 {
                    for &a in &s2 {
                        let v = pool2.read(a);
                        assert!(v & MARK == 0, "reader observed a raw marker");
                    }
                }
                stop2.store(true, Ordering::Relaxed);
            });
        });
    }

    #[test]
    fn recovery_rolls_back_uncommitted() {
        let (heap, pool) = setup();
        let s = slots(&heap, 2);
        heap.write(s[0], 1);
        heap.write(s[1], 2);
        heap.persist_range(s[1], 1);
        heap.persist_range(s[0], 1);
        heap.fence();

        // Simulate a crash mid-install: build a descriptor by hand,
        // persist it PENDING with one marker installed.
        let desc = pool.my_descriptor();
        let seq = 9;
        heap.write(pw(desc, D_SEQ), seq);
        heap.write(pw(desc, D_STATUS), st_word(seq, ST_PENDING));
        heap.write(pw(desc, D_COUNT), 2);
        for (i, (&a, old, new)) in [(&s[0], 1u64, 10u64), (&s[1], 2, 20)].iter().enumerate() {
            heap.write(pw(desc, D_TRIPLES + 3 * i as u64), a.0);
            heap.write(pw(desc, D_TRIPLES + 3 * i as u64 + 1), *old);
            heap.write(pw(desc, D_TRIPLES + 3 * i as u64 + 2), *new);
        }
        heap.persist_range(desc, HDR_WORDS + DESC_PAYLOAD_WORDS);
        heap.write(s[0], marked(desc, seq));
        heap.persist_range(s[0], 1);
        heap.fence();

        let img = heap.crash();
        let heap2 = Arc::new(NvmHeap::from_image(img));
        let (_alloc, blocks) = PAlloc::recover(Arc::clone(&heap2));
        let (fwd, back) = MwCasPool::recover(&heap2, &blocks);
        assert_eq!((fwd, back), (0, 1));
        assert_eq!(heap2.read(s[0]), 1, "roll-back must restore the old value");
        assert_eq!(heap2.read(s[1]), 2);
    }

    #[test]
    fn recovery_rolls_forward_committed() {
        let (heap, pool) = setup();
        let s = slots(&heap, 2);
        heap.write(s[0], 1);
        heap.write(s[1], 2);
        heap.persist_range(s[0], 1);
        heap.persist_range(s[1], 1);

        // Crash after the COMMITTED status persisted but before phase 2b.
        let desc = pool.my_descriptor();
        let seq = 4;
        heap.write(pw(desc, D_SEQ), seq);
        heap.write(pw(desc, D_STATUS), st_word(seq, ST_COMMITTED));
        heap.write(pw(desc, D_COUNT), 2);
        for (i, (&a, old, new)) in [(&s[0], 1u64, 10u64), (&s[1], 2, 20)].iter().enumerate() {
            heap.write(pw(desc, D_TRIPLES + 3 * i as u64), a.0);
            heap.write(pw(desc, D_TRIPLES + 3 * i as u64 + 1), *old);
            heap.write(pw(desc, D_TRIPLES + 3 * i as u64 + 2), *new);
        }
        heap.persist_range(desc, HDR_WORDS + DESC_PAYLOAD_WORDS);
        heap.write(s[0], marked(desc, seq));
        heap.write(s[1], marked(desc, seq));
        heap.persist_range(s[0], 1);
        heap.persist_range(s[1], 1);
        heap.fence();

        let heap2 = Arc::new(NvmHeap::from_image(heap.crash()));
        let (_alloc, blocks) = PAlloc::recover(Arc::clone(&heap2));
        let (fwd, back) = MwCasPool::recover(&heap2, &blocks);
        assert_eq!((fwd, back), (1, 0));
        assert_eq!(heap2.read(s[0]), 10);
        assert_eq!(heap2.read(s[1]), 20);
    }

    #[test]
    fn pmwcas_issues_many_more_flushes_than_mwcas() {
        let (heap, pool) = setup();
        let s = slots(&heap, 4);
        // Warm up the thread's descriptor so its one-time creation flush
        // is not charged to the transient path.
        let _ = pool.my_descriptor();
        let before = heap.stats().snapshot();
        assert!(pool.mwcas(&[MwTarget::new(s[0], 0, 1), MwTarget::new(s[1], 0, 1)]));
        let mid = heap.stats().snapshot();
        assert!(pool.pmwcas(&[MwTarget::new(s[2], 0, 1), MwTarget::new(s[3], 0, 1)]));
        let after = heap.stats().snapshot();
        let mwcas_flushes = mid.since(&before).flushes;
        let pmwcas_flushes = after.since(&mid).flushes;
        assert_eq!(mwcas_flushes, 0, "transient MwCAS must not flush");
        assert!(
            pmwcas_flushes >= 6,
            "PMwCAS flush schedule too thin: {pmwcas_flushes}"
        );
    }
}
