//! HTM-MwCAS: multi-word CAS as a single hardware transaction (the
//! Makreshanski/Brown building-block idiom, §2.2 of the paper).

use crate::descriptor::MwTarget;
use htm_sim::{FallbackLock, Htm, HtmConfig, MemAccess};
use nvm_sim::NvmHeap;
use std::sync::Arc;

/// A multi-word CAS executor backed by one hardware transaction per
/// operation, with a global-lock fallback. Far cheaper than the
/// descriptor protocol (Fig. 4) because the common case is a handful of
/// speculative loads and stores.
pub struct HtmMwCas {
    heap: Arc<NvmHeap>,
    htm: Htm,
    lock: FallbackLock,
}

impl HtmMwCas {
    pub fn new(heap: Arc<NvmHeap>) -> Self {
        Self::with_config(heap, HtmConfig::default())
    }

    pub fn with_config(heap: Arc<NvmHeap>, config: HtmConfig) -> Self {
        Self {
            heap,
            htm: Htm::new(config),
            lock: FallbackLock::new(),
        }
    }

    pub fn htm(&self) -> &Htm {
        &self.htm
    }

    /// Atomically: if every target holds its `old` value, store all the
    /// `new` values. Returns whether the swap happened.
    pub fn execute(&self, targets: &[MwTarget]) -> bool {
        self.htm
            .run(&self.lock, |m: &mut dyn MemAccess| {
                for t in targets {
                    if m.load(self.heap.word(t.addr))? != t.old {
                        return Ok(false);
                    }
                }
                for t in targets {
                    m.store(self.heap.word(t.addr), t.new)?;
                }
                Ok(true)
            })
            .expect("HTM-MwCAS raises no explicit aborts")
    }

    /// Atomic multi-word read (snapshot) of arbitrary locations.
    pub fn snapshot(&self, addrs: &[nvm_sim::NvmAddr]) -> Vec<u64> {
        self.htm
            .run(&self.lock, |m: &mut dyn MemAccess| {
                let mut out = Vec::with_capacity(addrs.len());
                for &a in addrs {
                    out.push(m.load(self.heap.word(a))?);
                }
                Ok(out)
            })
            .expect("snapshot raises no explicit aborts")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_sim::{NvmAddr, NvmConfig};

    fn setup() -> (Arc<NvmHeap>, HtmMwCas) {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(1 << 20)));
        let m = HtmMwCas::new(Arc::clone(&heap));
        (heap, m)
    }

    #[test]
    fn swap_and_fail_semantics() {
        let (heap, m) = setup();
        let a = heap.base();
        let b = a.offset(64);
        assert!(m.execute(&[MwTarget::new(a, 0, 1), MwTarget::new(b, 0, 2)]));
        assert!(!m.execute(&[MwTarget::new(a, 0, 9), MwTarget::new(b, 2, 9)]));
        assert_eq!(heap.read(a), 1);
        assert_eq!(heap.read(b), 2);
    }

    #[test]
    fn concurrent_transfers_conserve_sum() {
        let (heap, m) = setup();
        let m = Arc::new(m);
        let accounts: Vec<NvmAddr> = (0..8).map(|i| heap.base().offset(i * 8)).collect();
        for &a in &accounts {
            heap.write(a, 100);
        }
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let m = Arc::clone(&m);
                let accounts = accounts.clone();
                sc.spawn(move || {
                    let mut rng = t + 1;
                    for _ in 0..2000 {
                        rng ^= rng >> 12;
                        rng ^= rng << 25;
                        rng ^= rng >> 27;
                        let i = (rng % 8) as usize;
                        let j = ((rng >> 8) % 8) as usize;
                        if i == j {
                            continue;
                        }
                        let snap = m.snapshot(&[accounts[i], accounts[j]]);
                        if snap[0] == 0 {
                            continue;
                        }
                        let _ = m.execute(&[
                            MwTarget::new(accounts[i], snap[0], snap[0] - 1),
                            MwTarget::new(accounts[j], snap[1], snap[1] + 1),
                        ]);
                    }
                });
            }
        });
        let total: u64 = accounts.iter().map(|&a| m.heap.read(a)).sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn works_under_forced_fallback() {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(1 << 20)));
        let m = HtmMwCas::with_config(Arc::clone(&heap), HtmConfig::default().with_spurious(1.0));
        let a = heap.base();
        assert!(m.execute(&[MwTarget::new(a, 0, 7)]));
        assert_eq!(heap.read(a), 7);
        assert!(m.htm().stats().snapshot().fallbacks >= 1);
    }
}
