//! # mwcas: multi-word compare-and-swap, four ways
//!
//! The §4.2 / Fig. 4 experiment of the BD-HTM paper compares four ways of
//! atomically updating several NVM words:
//!
//! * [`mw_write`] — **Mw-WR**: raw unsynchronized writes (upper bound).
//! * [`MwCasPool::mwcas`] — **MwCAS**: the descriptor-based protocol of
//!   Wang et al. (Easy Lock-Free Indexing in NVM, ICDE 2018) *without*
//!   persist instructions: transient but lock-free and linearizable.
//! * [`MwCasPool::pmwcas`] — **PMwCAS**: the same protocol with the full
//!   persistence schedule (descriptor persisted at initialization, every
//!   installed word persisted, status persisted, final values persisted,
//!   descriptor reset persisted) so that a crash at any point can be
//!   rolled forward or backward by [`MwCasPool::recover`].
//! * [`HtmMwCas`] — **HTM-MwCAS**: one hardware transaction reads the
//!   expected values and publishes the new ones; a global fallback lock
//!   guarantees progress.
//!
//! The descriptor protocol: a thread initializes a descriptor listing
//! `(address, old, new)` triples, *installs* a marked pointer to the
//! descriptor in each target word (in canonical address order, CASing
//! from the expected old value), flips the descriptor status from
//! `PENDING` to `COMMITTED` (or `FAILED` if an install lost a race), and
//! finally replaces each marked pointer with the new (or old) value.
//! Threads that encounter a marked word *help* the owning operation to
//! completion before retrying their own.

mod descriptor;
mod htm_mwcas;

pub use descriptor::{MwCasPool, MwTarget, MAX_TARGETS, MWCAS_DESC_TAG};
pub use htm_mwcas::HtmMwCas;

use nvm_sim::NvmHeap;

/// **Mw-WR**: performs the writes with no synchronization or persistence —
/// the Fig. 4 baseline measuring pure store throughput.
pub fn mw_write(heap: &NvmHeap, targets: &[MwTarget]) {
    for t in targets {
        heap.write(t.addr, t.new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_sim::{NvmAddr, NvmConfig};
    use std::sync::Arc;

    #[test]
    fn mw_write_writes() {
        let heap = NvmHeap::new(NvmConfig::for_tests(1 << 20));
        let a = heap.base();
        mw_write(
            &heap,
            &[
                MwTarget::new(a, 0, 1),
                MwTarget::new(NvmAddr(a.0 + 1), 0, 2),
            ],
        );
        assert_eq!(heap.read(a), 1);
        assert_eq!(heap.read(NvmAddr(a.0 + 1)), 2);
    }

    #[test]
    fn four_variants_agree_on_success() {
        // The same logical update through each mechanism ends in the same
        // final state.
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(4 << 20)));
        let pool = MwCasPool::new(Arc::clone(&heap));
        let htm = HtmMwCas::new(Arc::clone(&heap));
        let a = NvmAddr(heap.capacity_words() - 64);
        let b = NvmAddr(heap.capacity_words() - 32);

        assert!(pool.mwcas(&[MwTarget::new(a, 0, 10), MwTarget::new(b, 0, 20)]));
        assert!(pool.pmwcas(&[MwTarget::new(a, 10, 11), MwTarget::new(b, 20, 21)]));
        assert!(htm.execute(&[MwTarget::new(a, 11, 12), MwTarget::new(b, 21, 22)]));
        assert_eq!(pool.read(a), 12);
        assert_eq!(pool.read(b), 22);
    }
}
