//! # bd-htm: Buffered Durability meets Hardware Transactional Memory
//!
//! A comprehensive Rust reproduction of *"Reconciling Hardware
//! Transactional Memory and Persistent Programming with Buffered
//! Durability"* (Mingzhe Du, Ziheng Su, Michael L. Scott — SPAA 2025).
//!
//! Explicit write-back instructions (`clwb`) abort hardware transactions,
//! so strictly durable persistent data structures cannot use HTM on
//! machines with volatile caches. This crate family shows — end to end,
//! on simulated TSX and Optane substrates — that **buffered durable
//! linearizability** (recover to the state at the end of epoch `e−2`
//! after a crash in epoch `e`) removes every persist instruction from
//! the transactional critical path, reconciling the two.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`htm_sim`] | best-effort HTM: TL2-style transactions, TSX abort causes, fallback-lock elision |
//! | [`nvm_sim`] | NVM heap: volatile/media split, `clwb`/fence, crash + eviction injection, eADR mode, Optane cost model |
//! | [`persist_alloc`] | recoverable segregated-fit NVM allocator (Ralloc's role) |
//! | [`bdhtm_core`] | **the paper's contribution**: the HTM-compatible buffered-durability epoch system (Table 2 API, §5.2 recovery), plus the shared Listing-1 operation lifecycle (`run_op`/`OpGuard`/`CommitEffects`) and the `BdlKv` structure trait |
//! | [`mwcas`] | Mw-WR / MwCAS / HTM-MwCAS / PMwCAS (Fig. 4) |
//! | [`veb`] | HTM-vEB and buffered-durable PHTM-vEB trees (§4.1) |
//! | [`skiplist`] | strictly durable DL-Skiplist, BDL-Skiplist, and the Fig. 5 ablations (§4.2) |
//! | [`hashtable`] | Listing-1 table, Spash, BD-Spash, CCEH, Plush (§4.3) |
//! | [`btree`] | LB+Tree, OCC-ABTree, Elim-ABTree baselines (Fig. 3) |
//! | [`ycsb_gen`] | YCSB-style workloads (uniform / scrambled Zipfian) |
//! | [`fault`] | deterministic crash-point sweeps: count→replay enumeration, torn writes, double crash, abort injection |
//!
//! ## Quickstart
//!
//! ```
//! use bd_htm::prelude::*;
//! use std::sync::Arc;
//!
//! // A simulated 32 MiB NVM device and a best-effort HTM.
//! let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20)));
//! let esys = EpochSys::format(Arc::clone(&heap), EpochConfig::default());
//! let htm = Arc::new(Htm::new(HtmConfig::default()));
//!
//! // A buffered-durable hash map (the paper's Listing 1).
//! let map = BdhtHashMap::new(1 << 10, Arc::clone(&esys), htm);
//! map.insert(7, 700);
//! assert_eq!(map.get(7), Some(700));
//!
//! // Two epoch advances make the insert durable; then crash...
//! esys.advance();
//! esys.advance();
//! let image = heap.crash();
//!
//! // ...and recover on a "rebooted" heap.
//! let heap2 = Arc::new(NvmHeap::from_image(image));
//! let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 1);
//! let map2 = BdhtHashMap::recover(1 << 10, esys2, Arc::new(Htm::new(HtmConfig::default())), &live);
//! assert_eq!(map2.get(7), Some(700));
//! ```

pub use bdhtm_core;
pub use btree;
pub use fault;
pub use hashtable;
pub use htm_sim;
pub use mwcas;
pub use nvm_sim;
pub use persist_alloc;
pub use skiplist;
pub use veb;
pub use ycsb_gen;

/// One-stop imports for applications.
pub mod prelude {
    pub use bdhtm_core::{
        run_op, BdlKv, CommitEffects, EpochConfig, EpochSys, EpochTicker, EventKind, FlightEvent,
        JsonValue, LiveBlock, MetricsRegistry, MetricsReport, OpGuard, OpStep, UpdateKind,
        KV_UNIVERSE_BITS,
    };
    pub use btree::{ElimAbTree, LbTree, OccAbTree};
    pub use fault::{SweepConfig, SweepReport, SweepTarget};
    pub use hashtable::{BdSpash, BdhtHashMap, Cceh, Plush, Spash};
    pub use htm_sim::{AbortCause, FallbackLock, HistSnapshot, Htm, HtmConfig, MemAccess};
    pub use mwcas::{HtmMwCas, MwCasPool, MwTarget};
    pub use nvm_sim::{CrashImage, NvmAddr, NvmConfig, NvmHeap};
    pub use skiplist::{BdlSkiplist, DlSkiplist, PersistMode};
    pub use veb::{HtmVeb, PhtmVeb};
    pub use ycsb_gen::{Mix, Op, OpKind, Rng64, Workload, WorkloadSpec};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Arc;

    #[test]
    fn facade_reexports_compose() {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(8 << 20)));
        let esys = EpochSys::format(heap, EpochConfig::default());
        let htm = Arc::new(Htm::new(HtmConfig::default()));
        let tree = PhtmVeb::new(10, esys, htm);
        tree.insert(1, 2);
        assert_eq!(tree.get(1), Some(2));
    }
}
