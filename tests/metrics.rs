//! End-to-end checks of the observability layer: one registry report
//! must be coherent across all attached sources, and its JSON form must
//! survive a round trip through the in-tree parser with every counter
//! intact. These are the same invariants `metrics_check` enforces on
//! report files in CI.

use bd_htm::prelude::*;
use std::sync::Arc;

/// Runs a small mixed workload and returns the live substrate handles.
fn run_workload() -> (Arc<EpochSys>, Arc<Htm>) {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20)));
    let esys = EpochSys::format(Arc::clone(&heap), EpochConfig::default());
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let map = BdhtHashMap::new(1 << 10, Arc::clone(&esys), Arc::clone(&htm));
    for k in 0..2_000u64 {
        map.insert(k, k + 1);
    }
    for k in 0..500u64 {
        map.remove(k * 4);
    }
    for k in 0..2_000u64 {
        let _ = map.get(k);
    }
    esys.advance();
    esys.advance();
    (esys, htm)
}

fn full_report() -> MetricsReport {
    let (esys, htm) = run_workload();
    let mut registry = MetricsRegistry::new();
    registry.attach_esys(esys);
    registry.attach_htm(htm);
    registry.report()
}

#[test]
fn report_is_coherent_across_sources() {
    let report = full_report();

    let h = report.htm.expect("htm attached");
    let total_aborts: u64 = h.aborts.iter().sum();
    assert_eq!(
        h.attempts(),
        h.commits + total_aborts,
        "every attempt must be a commit or a classified abort"
    );
    assert!(h.commits > 0, "the workload must have committed");

    let d = report.derived.expect("esys attached");
    assert!(d.persisted_frontier <= d.current_epoch);
    assert_eq!(d.frontier_lag, d.current_epoch - d.persisted_frontier);

    let e = report.epoch.expect("esys attached");
    assert!(e.advances >= 2, "the test advanced twice");

    // Operation latency histogram: every run_op records exactly once.
    let op_lat = report
        .histograms
        .iter()
        .find(|h| h.name == "op_latency_ns")
        .expect("op latency histogram present");
    assert!(op_lat.snap.count >= 2_500, "one sample per completed op");
    assert!(op_lat.snap.p50() <= op_lat.snap.p95());
    assert!(op_lat.snap.p95() <= op_lat.snap.p99());
    assert!(op_lat.snap.p99() <= op_lat.snap.max);
}

#[test]
fn json_round_trips_through_the_parser() {
    let report = full_report();
    let json = report.to_json();
    let doc = JsonValue::parse(&json).expect("report JSON must parse");

    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("bdhtm-metrics")
    );
    assert_eq!(
        doc.get("version").and_then(|v| v.as_u64()),
        Some(bd_htm::bdhtm_core::METRICS_VERSION)
    );

    // Counters survive serialization exactly.
    let h = report.htm.unwrap();
    let htm = doc.get("htm").expect("htm section");
    assert_eq!(htm.get("commits").and_then(|v| v.as_u64()), Some(h.commits));
    assert_eq!(
        htm.get("attempts").and_then(|v| v.as_u64()),
        Some(h.attempts())
    );
    let conflict = htm
        .get("aborts")
        .and_then(|a| a.get("conflict"))
        .and_then(|v| v.as_u64());
    assert_eq!(conflict, Some(h.aborts_of(AbortCause::Conflict)));

    let e = report.epoch.unwrap();
    let epoch = doc.get("epoch").expect("epoch section");
    assert_eq!(
        epoch.get("advances").and_then(|v| v.as_u64()),
        Some(e.advances)
    );
    assert_eq!(
        epoch.get("words_persisted").and_then(|v| v.as_u64()),
        Some(e.words_persisted)
    );

    let d = report.derived.unwrap();
    let derived = doc.get("derived").expect("derived section");
    assert_eq!(
        derived.get("frontier_lag").and_then(|v| v.as_u64()),
        Some(d.frontier_lag)
    );

    // v2 additions: the health gauge and the runtime-fault counters.
    assert_eq!(
        derived.get("health").and_then(|v| v.as_str()),
        Some(d.health.as_str())
    );
    assert_eq!(
        epoch.get("persist_retries").and_then(|v| v.as_u64()),
        Some(e.persist_retries)
    );
    assert_eq!(
        epoch.get("degradations").and_then(|v| v.as_u64()),
        Some(e.degradations)
    );
    assert_eq!(
        epoch.get("watchdog_fires").and_then(|v| v.as_u64()),
        Some(e.watchdog_fires)
    );

    // v3 additions: durability-lag quantiles, dropped-span and
    // dropped-event gauges, and the lag histogram itself.
    assert_eq!(
        derived.get("durability_lag_p99").and_then(|v| v.as_u64()),
        Some(d.durability_lag_p99)
    );
    assert_eq!(
        derived.get("lag_spans_dropped").and_then(|v| v.as_u64()),
        Some(d.lag_spans_dropped)
    );
    assert_eq!(
        derived
            .get("flight_events_dropped")
            .and_then(|v| v.as_u64()),
        Some(d.flight_events_dropped)
    );
    assert!(
        doc.get("histograms")
            .and_then(|h| h.get("durability_lag_ns"))
            .is_some(),
        "v3 report carries the durability lag histogram"
    );

    // v4 additions: persister-pool telemetry.
    assert_eq!(
        epoch.get("coalesced_flushes").and_then(|v| v.as_u64()),
        Some(e.coalesced_flushes)
    );
    assert_eq!(
        derived.get("persist_workers").and_then(|v| v.as_u64()),
        Some(d.persist_workers)
    );
    let worker_words = derived
        .get("persist_worker_words")
        .and_then(|v| v.as_arr())
        .expect("per-worker words array present");
    assert_eq!(worker_words.len(), bd_htm::bdhtm_core::MAX_PERSIST_WORKERS);
    for (json_w, &w) in worker_words.iter().zip(d.persist_worker_words.iter()) {
        assert_eq!(json_w.as_u64(), Some(w));
    }
    assert!(
        doc.get("histograms")
            .and_then(|h| h.get("persist_chunks"))
            .is_some(),
        "v4 report carries the chunk fan-out histogram"
    );

    // Histogram bucket lists carry the full count.
    let hists = doc.get("histograms").expect("histograms section");
    let op_lat = hists.get("op_latency_ns").expect("op latency histogram");
    let count = op_lat.get("count").and_then(|v| v.as_u64()).unwrap();
    let bucket_sum: u64 = op_lat
        .get("buckets")
        .and_then(|v| v.as_arr())
        .unwrap()
        .iter()
        .map(|pair| pair.as_arr().unwrap()[1].as_u64().unwrap())
        .sum();
    assert_eq!(bucket_sum, count, "nonzero buckets must account for count");
}

#[test]
fn partial_registries_omit_absent_sections() {
    let (_esys, htm) = run_workload();
    let mut registry = MetricsRegistry::new();
    registry.attach_htm(htm);
    let json = registry.report().to_json();
    let doc = JsonValue::parse(&json).unwrap();
    assert!(doc.get("htm").is_some());
    assert!(doc.get("epoch").is_none(), "no esys attached");
    assert!(doc.get("derived").is_none(), "no esys attached");
    assert!(doc.get("nvm").is_none(), "no heap attached");
}

#[test]
fn flight_recorder_captures_the_lifecycle() {
    let (esys, _htm) = run_workload();
    let dump = esys.obs().dump(64);
    assert!(!dump.is_empty(), "the workload must leave flight events");
    // Commits and epoch advances both appear in a mixed run.
    assert!(dump.iter().any(|ev| ev.kind == EventKind::OpCommit));
    assert!(dump.iter().any(|ev| ev.kind == EventKind::EpochAdvance));
    // Events render to stable human-readable lines.
    let line = dump[0].render();
    assert!(
        line.contains("ns t"),
        "rendered line carries time and tid: {line}"
    );
}
