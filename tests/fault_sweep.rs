//! Exhaustive crash-point sweeps: the systematic replacement for the
//! hand-placed crash tests. Every test enumerates the persist
//! boundaries a seeded mixed workload crosses (several thousand per
//! structure) and replays an even stride of them, crashing, recovering,
//! and checking the BDL e−2 prefix property plus each structure's
//! structural invariants. `FAULT_SEED` pins the whole schedule.

use bd_htm::prelude::*;
use fault::{enumerate_points, replay, seed_from_env, sweep, SweepConfig, SweepReport};
use std::sync::Arc;

/// CI-sized sweep: enumerates well over 100 crash points per structure
/// while keeping each replay cheap on a single-core runner.
fn ci_cfg(seed: u64) -> SweepConfig {
    let mut c = SweepConfig::quick(seed);
    c.ops = 120;
    c.advance_every = 16;
    c.keys = 64;
    c
}

fn assert_clean(r: &SweepReport) {
    assert!(
        r.points >= 100,
        "{}: expected >= 100 crash points, enumerated {}",
        r.structure,
        r.points
    );
    assert!(
        r.passed(),
        "{}: {}/{} replays failed; first: {}",
        r.structure,
        r.failures.len(),
        r.replays,
        r.failures[0]
    );
    assert_eq!(
        r.fired, r.replays,
        "{}: every strided point must actually fire",
        r.structure
    );
}

#[test]
fn crash_point_sweep_phtm_veb() {
    let cfg = ci_cfg(seed_from_env(0x0EB0_0001)).with_max_replays(80);
    assert_clean(&sweep::<PhtmVeb>(&cfg));
}

#[test]
fn crash_point_sweep_bdl_skiplist() {
    let cfg = ci_cfg(seed_from_env(0x5C1F_0001)).with_max_replays(80);
    assert_clean(&sweep::<BdlSkiplist>(&cfg));
}

#[test]
fn crash_point_sweep_bd_spash() {
    let cfg = ci_cfg(seed_from_env(0x5BA5_0001)).with_max_replays(80);
    assert_clean(&sweep::<BdSpash>(&cfg));
}

#[test]
fn torn_write_sweep_all_structures() {
    let cfg = ci_cfg(seed_from_env(0x70A1_0001))
        .with_torn_writes()
        .with_max_replays(35);
    assert_clean(&sweep::<PhtmVeb>(&cfg));
    assert_clean(&sweep::<BdlSkiplist>(&cfg));
    assert_clean(&sweep::<BdSpash>(&cfg));
}

#[test]
fn double_crash_sweep_all_structures() {
    let cfg = ci_cfg(seed_from_env(0xD0B1_0001))
        .with_torn_writes()
        .with_double_crash()
        .with_max_replays(20);
    for r in [
        sweep::<PhtmVeb>(&cfg),
        sweep::<BdlSkiplist>(&cfg),
        sweep::<BdSpash>(&cfg),
    ] {
        assert_clean(&r);
        assert!(
            r.double_crashes > 0,
            "{}: recovery must get crashed at least once",
            r.structure
        );
    }
}

/// Same `FAULT_SEED` ⇒ identical crash-point schedule, for every
/// structure family (the reproducibility half of the sweep contract).
#[test]
fn same_fault_seed_means_identical_schedule() {
    let cfg = ci_cfg(0xDE7E_0001);
    assert_eq!(
        enumerate_points::<PhtmVeb>(&cfg),
        enumerate_points::<PhtmVeb>(&cfg)
    );
    assert_eq!(
        enumerate_points::<BdlSkiplist>(&cfg),
        enumerate_points::<BdlSkiplist>(&cfg)
    );
    assert_eq!(
        enumerate_points::<BdSpash>(&cfg),
        enumerate_points::<BdSpash>(&cfg)
    );
}

/// Crashes swept *through the HTM fallback path*: seeded spurious,
/// conflict, and capacity aborts force retries and lock-mode execution,
/// and recovery after every crash point must still land on the durable
/// prefix (Listing 1's epoch tagging must hold in the fallback too).
#[test]
fn abort_injection_sweep_all_structures() {
    let seed = seed_from_env(0xAB07_0001);
    let cfg = ci_cfg(seed)
        .with_htm(
            HtmConfig::for_tests()
                .with_abort_injection(seed | 1, 0.15, 0.10, 0.05)
                .with_max_retries(3)
                .with_backoff(2),
        )
        .with_max_replays(25);
    assert_clean(&sweep::<PhtmVeb>(&cfg));
    assert_clean(&sweep::<BdlSkiplist>(&cfg));
    assert_clean(&sweep::<BdSpash>(&cfg));
}

/// The acceptance scenario in one piece: *every* transaction attempt is
/// forced to abort, so every operation completes through the global-lock
/// fallback; a crash plus recovery must still satisfy the prefix
/// property, and no invalid-epoch block may surface from recovery.
#[test]
fn forced_fallback_ops_recover_to_the_durable_prefix() {
    use bd_htm::persist_alloc::INVALID_EPOCH;

    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(8 << 20)));
    let esys = EpochSys::format(Arc::clone(&heap), EpochConfig::manual());
    let htm = Arc::new(Htm::new(
        HtmConfig::for_tests()
            .with_abort_injection(0xFA11_BAC5, 1.0, 0.0, 0.0)
            .with_max_retries(2)
            .with_backoff(2),
    ));
    let list = BdlSkiplist::new(Arc::clone(&esys), Arc::clone(&htm));

    // Seeded mixed workload, logging (epoch, key, value-or-remove).
    let mut log: Vec<(u64, u64, Option<u64>)> = Vec::new();
    let mut rng = htm_sim::SplitMix64::new(0xFA11_0001);
    for i in 0..300usize {
        let k = 1 + rng.next_below(64);
        if rng.next_below(4) < 3 {
            let v = rng.next_u64() | 1;
            log.push((esys.current_epoch(), k, Some(v)));
            list.insert(k, v);
        } else {
            log.push((esys.current_epoch(), k, None));
            list.remove(k);
        }
        if i % 25 == 24 {
            esys.advance();
        }
    }
    let snap = htm.stats().snapshot();
    assert_eq!(snap.commits, 0, "forced aborts must leave no HTM commits");
    assert!(
        snap.fallbacks > 0,
        "operations must go through the fallback"
    );

    let heap2 = Arc::new(NvmHeap::from_image(heap.crash()));
    let (esys2, live) = EpochSys::recover(heap2, EpochConfig::manual(), 1);
    let r = esys2.persisted_frontier();
    for b in &live {
        assert_ne!(
            b.epoch, INVALID_EPOCH,
            "invalid-epoch block survived recovery"
        );
        assert!(
            b.epoch <= r,
            "block from undurable epoch {} survived (frontier {r})",
            b.epoch
        );
    }
    let list2 = BdlSkiplist::recover(esys2, Arc::new(Htm::new(HtmConfig::for_tests())), &live, 1);
    list2.validate().expect("post-recovery invariants");

    let mut want = std::collections::HashMap::new();
    for &(e, k, v) in &log {
        if e > r {
            break;
        }
        match v {
            Some(v) => {
                want.insert(k, v);
            }
            None => {
                want.remove(&k);
            }
        }
    }
    for k in 1..=64u64 {
        assert_eq!(
            list2.get(k),
            want.get(&k).copied(),
            "key {k} diverged after fallback-path crash (frontier {r})"
        );
    }
}

/// A replay beyond the schedule degrades to an end-of-workload crash —
/// the sweep driver's guard against marginal schedule drift.
#[test]
fn replay_past_the_schedule_still_recovers() {
    let cfg = ci_cfg(0xE0D0_0001);
    let v = replay::<BdSpash>(&cfg, u64::MAX).expect("end-of-run crash must recover");
    assert!(!v.fired);
}
