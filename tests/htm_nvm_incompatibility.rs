//! The paper's premise, demonstrated end to end: persist instructions
//! abort hardware transactions, so the naive "just flush inside the
//! transaction" strategy livelocks onto the fallback lock — and the
//! epoch system removes the flushes from the transactional path.

use bd_htm::prelude::*;
use htm_sim::AbortCause;
use std::sync::Arc;

/// A strictly-durable insert attempted *inside* a transaction aborts
/// with PersistInTxn every time, exactly like `clwb` under TSX.
#[test]
fn naive_durable_transactions_always_abort() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(8 << 20)));
    let htm = Htm::new(HtmConfig::default());
    let a = heap.base();
    for _ in 0..32 {
        let r = htm.attempt(|t| {
            t.store(heap.word(a), 42)?;
            heap.clwb(a); // the incompatibility
            Ok(())
        });
        assert_eq!(r.unwrap_err(), AbortCause::PersistInTxn);
    }
    // Nothing ever committed, nothing ever persisted.
    assert_eq!(heap.crash().word(a), 0);
}

/// NVM allocation inside a transaction aborts too (Montage's pNew
/// problem, §3) — which is why Listing 1 preallocates.
#[test]
fn allocation_inside_a_transaction_aborts() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(8 << 20)));
    let esys = EpochSys::format(heap, EpochConfig::default());
    let htm = Htm::new(HtmConfig::default());
    esys.begin_op();
    let r = htm.attempt(|_t| {
        let _blk = esys.p_new(2); // allocator metadata flush poisons us
        Ok(())
    });
    assert_eq!(r.unwrap_err(), AbortCause::PersistInTxn);
    esys.end_op();
}

/// Under eADR (persistent caches) the incompatibility disappears: the
/// same transactional flush commits fine — the §4.3 premise.
#[test]
fn eadr_dissolves_the_incompatibility() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(8 << 20).with_eadr(true)));
    let htm = Htm::new(HtmConfig::default());
    let a = heap.base();
    let r = htm.attempt(|t| {
        t.store(heap.word(a), 7)?;
        heap.clwb(a); // a hint, not an abort
        Ok(())
    });
    assert!(r.is_ok());
    assert_eq!(heap.crash().word(a), 7);
}

/// The resolution: the BDL epoch system keeps transactions flush-free
/// (zero PersistInTxn aborts across an entire workload) while still
/// delivering durability two epochs later.
#[test]
fn epoch_system_keeps_transactions_flush_free() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20)));
    let esys = EpochSys::format(heap, EpochConfig::default());
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let map = BdhtHashMap::new(1 << 8, Arc::clone(&esys), Arc::clone(&htm));
    for k in 0..500u64 {
        map.insert(k, k);
        if k % 100 == 0 {
            esys.advance();
        }
    }
    let s = htm.stats().snapshot();
    assert_eq!(
        s.aborts_of(AbortCause::PersistInTxn),
        0,
        "BDL operations must never flush inside a transaction"
    );
    assert!(s.commits >= 500);

    esys.advance();
    esys.advance();
    let heap2 = Arc::new(NvmHeap::from_image(esys.heap().crash()));
    let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 1);
    let map2 = BdhtHashMap::recover(
        1 << 8,
        esys2,
        Arc::new(Htm::new(HtmConfig::default())),
        &live,
    );
    for k in 0..500u64 {
        assert_eq!(map2.get(k), Some(k));
    }
}
