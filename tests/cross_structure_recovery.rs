//! Multiple BDL structures sharing one heap and one epoch system — the
//! deployment the paper envisions (indexes aligned with one buffered
//! storage system). Recovery classifies blocks once and each structure
//! rebuilds from its own tag.

use bd_htm::prelude::*;
use std::sync::Arc;

#[test]
fn tree_and_table_share_an_epoch_system_and_recover_together() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
    let esys = EpochSys::format(heap, EpochConfig::default());
    let htm = Arc::new(Htm::new(HtmConfig::default()));

    let tree = PhtmVeb::new(12, Arc::clone(&esys), Arc::clone(&htm));
    let table = BdhtHashMap::new(1 << 9, Arc::clone(&esys), Arc::clone(&htm));

    for k in 0..600u64 {
        tree.insert(k, k + 1);
        table.insert(k, k + 2);
    }
    esys.advance();
    esys.advance();
    // Post-durability writes, lost at the crash.
    for k in 600..700u64 {
        tree.insert(k, k + 1);
        table.insert(k, k + 2);
    }

    let heap2 = Arc::new(NvmHeap::from_image(esys.heap().crash()));
    let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 2);

    // Each structure's blocks are distinguishable by tag.
    let veb_blocks = live.iter().filter(|b| b.tag == veb::VEB_KV_TAG).count();
    let tbl_blocks = live
        .iter()
        .filter(|b| b.tag == hashtable::LISTING1_KV_TAG)
        .count();
    assert_eq!(veb_blocks, 600);
    assert_eq!(tbl_blocks, 600);

    let htm2 = Arc::new(Htm::new(HtmConfig::default()));
    let tree2 = PhtmVeb::recover(12, Arc::clone(&esys2), Arc::clone(&htm2), &live, 2);
    let table2 = BdhtHashMap::recover(1 << 9, esys2, htm2, &live);
    for k in 0..600u64 {
        assert_eq!(tree2.get(k), Some(k + 1));
        assert_eq!(table2.get(k), Some(k + 2));
    }
    for k in 600..700u64 {
        assert_eq!(tree2.get(k), None);
        assert_eq!(table2.get(k), None);
    }
    // Ordered queries still work on the recovered tree.
    assert_eq!(tree2.successor(0), Some((1, 2)));
}

/// Concurrent operations on both structures with a live ticker, then
/// crash mid-flight: recovery must produce *some* consistent durable
/// prefix for each structure.
#[test]
fn concurrent_mixed_structures_survive_a_midflight_crash() {
    use std::time::Duration;
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
    let esys = EpochSys::format(
        heap,
        EpochConfig::default().with_epoch_len(Duration::from_millis(5)),
    );
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let tree = Arc::new(PhtmVeb::new(12, Arc::clone(&esys), Arc::clone(&htm)));
    let table = Arc::new(BdhtHashMap::new(
        1 << 11,
        Arc::clone(&esys),
        Arc::clone(&htm),
    ));

    let ticker = EpochTicker::spawn(Arc::clone(&esys));
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let tree = Arc::clone(&tree);
            let table = Arc::clone(&table);
            s.spawn(move || {
                for i in 0..2000u64 {
                    let k = (t * 2000 + i) % 4096;
                    tree.insert(k, k.wrapping_mul(3));
                    table.insert(k, k.wrapping_mul(5));
                }
            });
        }
    });
    ticker.stop();

    let heap2 = Arc::new(NvmHeap::from_image(esys.heap().crash()));
    let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 2);
    let htm2 = Arc::new(Htm::new(HtmConfig::default()));
    let tree2 = PhtmVeb::recover(12, Arc::clone(&esys2), Arc::clone(&htm2), &live, 2);
    let table2 = BdhtHashMap::recover(1 << 11, esys2, htm2, &live);

    // Whatever survived must carry the exact deterministic values.
    let mut recovered = 0;
    for k in 0..4096u64 {
        if let Some(v) = tree2.get(k) {
            assert_eq!(v, k.wrapping_mul(3), "tree key {k} corrupt");
            recovered += 1;
        }
        if let Some(v) = table2.get(k) {
            assert_eq!(v, k.wrapping_mul(5), "table key {k} corrupt");
        }
    }
    assert!(
        recovered > 0,
        "a millisecond ticker should persist something"
    );
}
