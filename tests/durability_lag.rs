//! End-to-end checks of the durability-lag spans (commit → frontier
//! publish) that feed the v3 `durability_lag_ns` histogram. Three modes
//! matter and each attributes lag differently:
//!
//! * **pipelined** — a background persister with real nvm-sim
//!   write-back latency: every op committed into a sealed batch shows
//!   lag at least as long as the batch's write-back took;
//! * **sync** — inline drains, zero device latency: lag collapses to
//!   roughly the advance cadence;
//! * **Degraded → Failed** — the fault ladder: the histogram plus the
//!   dropped-span gauge stay coherent with the number of commits even
//!   when the frontier freezes and spans can never fold.
//!
//! The map operations go through `run_op` (the only path that stamps
//! commit events), so these tests exercise exactly what a real
//! application sees in its metrics report.

use bd_htm::bdhtm_core::{HealthState, Persister};
use bd_htm::nvm_sim::DeviceFaults;
use bd_htm::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Builds the standard stack on a heap with the given config; manual
/// epoch control so the tests own the advance schedule.
fn stack(nc: NvmConfig, ec: EpochConfig) -> (Arc<NvmHeap>, Arc<EpochSys>, BdhtHashMap) {
    let heap = Arc::new(NvmHeap::new(nc));
    let esys = EpochSys::format(Arc::clone(&heap), ec);
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let map = BdhtHashMap::new(1 << 10, Arc::clone(&esys), htm);
    (heap, esys, map)
}

fn report_for(esys: &Arc<EpochSys>) -> MetricsReport {
    let mut registry = MetricsRegistry::new();
    registry.attach_esys(Arc::clone(esys));
    registry.report()
}

fn lag_hist(report: &MetricsReport) -> &HistSnapshot {
    &report
        .histograms
        .iter()
        .find(|h| h.name == "durability_lag_ns")
        .expect("durability_lag_ns histogram present")
        .snap
}

/// Pipelined mode: the persister grinds through a 40-block batch at
/// 0.5 ms of simulated write-back per line, so every op committed into
/// that batch must show a commit→durable lag of at least the batch
/// duration — tens of milliseconds, not the microseconds the commit
/// itself took.
#[test]
fn pipelined_lag_covers_the_persist_batch_duration() {
    let mut nc = NvmConfig::for_tests(8 << 20);
    nc.writeback_ns = 500_000; // 0.5 ms per line: a 40-block batch ≳ 20 ms
    let (_heap, esys, map) = stack(nc, EpochConfig::manual());
    let persister = Persister::spawn(Arc::clone(&esys));

    let t0 = Instant::now();
    for k in 0..40u64 {
        assert!(map.insert(k, k + 1));
    }
    esys.advance();
    esys.advance(); // seals the 40-op batch — enqueue only
    let target = esys.current_epoch();
    esys.advance_until(target); // blocks until the frontier publishes
    persister.stop();
    let elapsed = t0.elapsed().as_nanos() as u64;

    let report = report_for(&esys);
    let d = report.derived.expect("esys attached");
    let lag = lag_hist(&report);

    assert!(
        lag.count >= 40,
        "one span per published insert: {}",
        lag.count
    );
    assert!(
        d.durability_lag_max >= 10_000_000,
        "lag must cover the ≳20 ms write-back, got max {} ns",
        d.durability_lag_max
    );
    assert!(
        d.durability_lag_max <= elapsed,
        "no span can outlast the run ({} > {elapsed} ns)",
        d.durability_lag_max
    );
    assert!(d.durability_lag_p50 <= d.durability_lag_p99);
    assert!(d.durability_lag_p99 <= d.durability_lag_max);
    assert_eq!(d.lag_spans_dropped, 0, "every span published in order");
}

/// Sync mode: no persister, zero device latency, inline drains on every
/// advance. Lag exists (buffered durability still defers by two epochs)
/// but collapses to the advance cadence — bounded by the whole run's
/// wall time rather than any device stall.
#[test]
fn sync_mode_lag_collapses_to_the_advance_cadence() {
    let (_heap, esys, map) = stack(NvmConfig::for_tests(8 << 20), EpochConfig::manual());

    let t0 = Instant::now();
    let inserts = 64u64;
    for k in 0..inserts {
        assert!(map.insert(k, k));
        if k % 16 == 15 {
            esys.advance();
        }
    }
    esys.advance();
    esys.advance(); // publish everything committed above
    let elapsed = t0.elapsed().as_nanos() as u64;

    let report = report_for(&esys);
    let d = report.derived.expect("esys attached");
    let lag = lag_hist(&report);

    assert!(lag.count >= inserts, "every insert folded: {}", lag.count);
    assert!(
        d.durability_lag_max <= elapsed,
        "inline drains: lag bounded by the run itself ({} > {elapsed})",
        d.durability_lag_max
    );
    assert_eq!(d.lag_spans_dropped, 0);
}

/// The fault ladder: retry exhaustion ratchets Ok → Degraded → Failed.
/// Spans committed after the frontier freezes can never fold, yet the
/// accounting must stay coherent — folded spans plus dropped spans never
/// exceed commits — and the v3 report must still serialize cleanly from
/// a Failed system.
#[test]
fn lag_accounting_stays_coherent_through_degraded_and_failed() {
    let (heap, esys, map) = stack(
        NvmConfig::for_tests(8 << 20),
        EpochConfig::manual()
            .with_persist_retries(1)
            .with_persist_backoff_spins(1),
    );
    esys.attach_persister(); // hand-driven pipelined mode

    let mut commits = 0u64;
    for k in 0..16u64 {
        assert!(map.insert(k, k));
        commits += 1;
        if k % 8 == 7 {
            esys.advance();
        }
    }
    assert!(esys.persist_next_batch(), "healthy device: first batch ok");
    assert_eq!(esys.health(), HealthState::Ok);

    // A device failing every write-back: the next batch burns its
    // budget and degrades; a second exhaustion fail-stops.
    heap.arm_device_faults(Arc::new(
        DeviceFaults::new(0xBD).with_writeback_failures(1000),
    ));
    assert!(!esys.persist_next_batch());
    assert_eq!(esys.health(), HealthState::Degraded);

    // Degraded still accepts commits — their spans park behind the
    // frozen frontier.
    for k in 100..108u64 {
        assert!(map.insert(k, k));
        commits += 1;
    }

    assert!(!esys.persist_next_batch());
    assert_eq!(esys.health(), HealthState::Failed);
    heap.disarm_device_faults();
    assert!(
        esys.try_begin_op().is_err(),
        "Failed rejects new ops, so no further spans are stamped"
    );

    let report = report_for(&esys);
    let d = report.derived.expect("esys attached");
    assert_eq!(d.health, HealthState::Failed);
    let lag = lag_hist(&report);
    assert!(
        lag.count + d.lag_spans_dropped <= commits,
        "folded ({}) + dropped ({}) spans must not exceed {commits} commits",
        lag.count,
        d.lag_spans_dropped
    );
    assert!(
        lag.count < commits,
        "spans parked behind the frozen frontier must not be counted durable"
    );

    // A Failed system still produces a parseable report.
    let doc = JsonValue::parse(&report.to_json()).expect("report JSON parses");
    assert_eq!(
        doc.get("version").and_then(|v| v.as_u64()),
        Some(bd_htm::bdhtm_core::METRICS_VERSION)
    );
    assert_eq!(
        doc.get("derived")
            .and_then(|d| d.get("health"))
            .and_then(|v| v.as_str()),
        Some("failed")
    );
    esys.detach_persister();
}
