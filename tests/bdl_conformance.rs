//! The generic BDL conformance suite: one set of property tests,
//! instantiated for every [`BdlKv`] structure.
//!
//! Each structure module runs the same two checks:
//!
//! * **Oracle conformance** — a seeded mixed workload (inserts, removes,
//!   gets, epoch advances, random cache-line evictions) must agree with
//!   a `std` reference model at every step, and the structure's own
//!   invariants must hold at the end.
//! * **Durable prefix** — the central BDL guarantee (§2.1): crash a
//!   single-threaded logged history at an arbitrary point, recover, and
//!   the recovered state must equal the replay of *exactly* those
//!   operations whose epoch is at or below the persisted frontier `R`.
//!
//! Adding a structure to the repo means implementing `BdlKv` and adding
//! one `conformance_suite!` line here.

use bd_htm::prelude::*;
use htm_sim::SplitMix64;
use std::collections::HashMap;
use std::sync::Arc;

fn substrate(bytes: usize) -> (Arc<NvmHeap>, Arc<EpochSys>, Arc<Htm>) {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(bytes)));
    let esys = EpochSys::format(Arc::clone(&heap), EpochConfig::default());
    (heap, esys, Arc::new(Htm::new(HtmConfig::default())))
}

/// Seeded mixed workload against a `HashMap` oracle, with epoch
/// advances and adversarial cache-replacement interleaved.
fn oracle_conformance<T: BdlKv>() {
    const CASES: u64 = 8;
    for case in 0..CASES {
        let seed = 0xC0F0_0000 + case;
        let mut rng = SplitMix64::new(seed);
        let (heap, esys, htm) = substrate(32 << 20);
        let t = T::new(Arc::clone(&esys), htm);
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for _ in 0..1500 {
            if rng.next_below(97) == 0 {
                esys.advance();
            }
            if rng.next_below(53) == 0 {
                heap.evict_random_lines(4, rng.next_u64());
            }
            let key = 1 + rng.next_below((1 << KV_UNIVERSE_BITS) - 1);
            match rng.next_below(4) {
                0 | 1 => {
                    let v = rng.next_u64();
                    assert_eq!(
                        t.insert(key, v),
                        oracle.insert(key, v).is_none(),
                        "{} seed {seed}: insert({key})",
                        T::NAME
                    );
                }
                2 => assert_eq!(
                    t.remove(key),
                    oracle.remove(&key).is_some(),
                    "{} seed {seed}: remove({key})",
                    T::NAME
                ),
                _ => assert_eq!(
                    t.get(key),
                    oracle.get(&key).copied(),
                    "{} seed {seed}: get({key})",
                    T::NAME
                ),
            }
        }
        t.validate()
            .unwrap_or_else(|e| panic!("{} seed {seed}: validate: {e}", T::NAME));
    }
}

#[derive(Clone, Copy, Debug)]
enum LoggedOp {
    Insert(u64, u64),
    Remove(u64),
}

/// Crash a logged single-threaded history, recover, and check the
/// recovered state is the exact `R`-prefix replay.
fn durable_prefix<T: BdlKv>() {
    const KEYS: u64 = 256;
    for crash_after in [40usize, 333, 900] {
        let (heap, esys, htm) = substrate(32 << 20);
        let t = T::new(Arc::clone(&esys), htm);

        let mut rng = SplitMix64::new(0xD0B0 + crash_after as u64);
        let mut log: Vec<(u64, LoggedOp)> = Vec::new();
        for _ in 0..crash_after {
            if rng.next_below(97) == 0 {
                esys.advance();
            }
            if rng.next_below(53) == 0 {
                heap.evict_random_lines(8, rng.next_u64());
            }
            let e = esys.current_epoch();
            let key = 1 + rng.next_below(KEYS);
            if rng.next_below(3) == 0 {
                t.remove(key);
                log.push((e, LoggedOp::Remove(key)));
            } else {
                let v = rng.next_u64();
                t.insert(key, v);
                log.push((e, LoggedOp::Insert(key, v)));
            }
        }

        // Crash and recover.
        let heap2 = Arc::new(NvmHeap::from_image(heap.crash()));
        let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 1);
        let r = esys2.persisted_frontier();
        let t2 = T::recover(esys2, Arc::new(Htm::new(HtmConfig::default())), &live);
        t2.validate()
            .unwrap_or_else(|e| panic!("{} crash_after={crash_after}: validate: {e}", T::NAME));

        // Replay exactly the ops with epoch <= R. A single-threaded
        // history's later epochs are a strict suffix, so stop at the
        // first too-new epoch.
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for (e, op) in &log {
            if *e > r {
                break;
            }
            match op {
                LoggedOp::Insert(k, v) => {
                    oracle.insert(*k, *v);
                }
                LoggedOp::Remove(k) => {
                    oracle.remove(k);
                }
            }
        }
        for key in 1..=KEYS {
            assert_eq!(
                t2.get(key),
                oracle.get(&key).copied(),
                "{} crash_after={crash_after}, R={r}: key {key} diverges from the durable prefix",
                T::NAME
            );
        }
    }
}

macro_rules! conformance_suite {
    ($mod_name:ident, $ty:ty) => {
        mod $mod_name {
            use super::*;

            #[test]
            fn matches_oracle_with_epochs_and_evictions() {
                oracle_conformance::<$ty>();
            }

            #[test]
            fn crash_recovers_exactly_the_durable_prefix() {
                durable_prefix::<$ty>();
            }
        }
    };
}

conformance_suite!(phtm_veb, PhtmVeb);
conformance_suite!(bdl_skiplist, BdlSkiplist);
conformance_suite!(bd_spash, BdSpash);
conformance_suite!(listing1_bdht, BdhtHashMap);
