//! Metamorphic check for the sharded buffered-words accounting.
//!
//! PR 7 replaced the epoch system's single global `buffered_words`
//! atomic with per-thread cache-padded "added" stripes plus one global
//! "drained" counter (see `crates/core/src/esys/account.rs`). The
//! documented contract is *exactness on seal*: whenever the system is
//! quiesced at a seal boundary (no op in flight, no batch in flight),
//! the lazy aggregate `Σ added[..] − drained` must equal the value the
//! old global counter would have held — every track/retire added, every
//! abort subtracted, every seal-time dedup excess and every persisted
//! batch refunded.
//!
//! This test drives mixed workloads (tracks, duplicate tracks, retires,
//! aborts; single- and multi-threaded; sync-inline and hand-driven
//! pipelined persistence) while replaying the old global-counter
//! semantics in an oracle, and asserts `EpochSys::buffered_words()`
//! equals the oracle at every quiesced seal boundary.
//!
//! The per-op word costs are *calibrated*, not hardcoded: a
//! single-threaded probe measures the buffered-words delta of one
//! track/one retire (where sharded and global semantics trivially
//! coincide — one writer, one stripe), and the oracle then predicts the
//! multi-threaded / multi-epoch totals from those deltas. A bug that
//! loses stripe updates across threads, double-drains on dedup, or
//! forgets the abort refund breaks the predicted equality.

use bd_htm::prelude::*;
use std::sync::Arc;

fn fresh(cfg: EpochConfig) -> Arc<EpochSys> {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(16 << 20)));
    EpochSys::format(heap, cfg)
}

/// Measure the buffered-words cost of tracking one freshly allocated
/// block with `payload_words` payload, and of one retire, on a scratch
/// system. Single-threaded, so old-global and sharded semantics agree
/// by construction; this anchors the oracle.
fn calibrate(payload_words: u64) -> (u64, u64) {
    let es = fresh(EpochConfig::manual());
    es.begin_op();
    let blk = es.p_new(payload_words);
    let before = es.buffered_words();
    es.p_track(blk);
    let track_cost = es.buffered_words() - before;
    es.end_op();
    // Make the block durable so it is retirable.
    es.advance();
    es.advance();
    es.begin_op();
    let before = es.buffered_words();
    es.p_retire(blk);
    let retire_cost = es.buffered_words() - before;
    es.end_op();
    assert!(track_cost > 0, "tracking must buffer at least the header");
    assert!(retire_cost > 0, "retiring must buffer the tombstone header");
    (track_cost, retire_cost)
}

/// Old-global-counter oracle: the running value the pre-refactor
/// `fetch_add`/`fetch_sub` accounting would hold, replayed from the
/// workload's event stream.
#[derive(Default)]
struct Oracle {
    value: u64,
}

impl Oracle {
    fn track(&mut self, times: u64, cost: u64) {
        // The old counter charged every p_track call, duplicates
        // included; the seal refunds the dedup excess later.
        self.value += times * cost;
    }
    fn retire(&mut self, cost: u64) {
        self.value += cost;
    }
    fn abort(&mut self, words: u64) {
        self.value -= words;
    }
    /// An epoch sealed and fully persisted: each distinct block drains
    /// once at batch completion, each duplicate drains at seal time.
    /// Net effect: everything charged for that epoch is refunded.
    fn epoch_drained(&mut self, charged: u64) {
        self.value -= charged;
    }
}

#[test]
fn single_threaded_seal_boundaries_match_global_oracle() {
    let (track_cost, retire_cost) = calibrate(2);
    let es = fresh(EpochConfig::manual());
    let mut oracle = Oracle::default();

    // Epoch A: 3 distinct blocks, one tracked 3x (duplicates), one
    // retire of a block made durable first.
    es.begin_op();
    let durable = es.p_new(2);
    es.p_track(durable);
    es.end_op();
    oracle.track(1, track_cost);
    es.advance();
    es.advance();
    oracle.epoch_drained(track_cost); // durable's epoch sealed + drained
    assert_eq!(es.buffered_words(), oracle.value, "after warmup drain");

    let mut charged_this_epoch = 0u64;
    es.begin_op();
    for _ in 0..3 {
        let b = es.p_new(2);
        es.p_track(b);
        oracle.track(1, track_cost);
        charged_this_epoch += track_cost;
    }
    let dup = es.p_new(2);
    for _ in 0..3 {
        es.p_track(dup); // same block 3x: old counter charges 3x
        oracle.track(1, track_cost);
        charged_this_epoch += track_cost;
    }
    es.p_retire(durable);
    oracle.retire(retire_cost);
    charged_this_epoch += retire_cost;
    es.end_op();
    assert_eq!(es.buffered_words(), oracle.value, "pre-seal, dupes charged");

    // An aborted op must refund exactly what it added.
    es.begin_op();
    let doomed = es.p_new(2);
    es.p_track(doomed);
    oracle.track(1, track_cost);
    oracle.abort(track_cost);
    es.abort_op();
    assert_eq!(es.buffered_words(), oracle.value, "abort refunded");

    // Seal the charged epoch (advance once: seals the *previous*
    // epoch, which is empty; advance twice: seals + drains ours).
    es.advance();
    assert_eq!(es.buffered_words(), oracle.value, "empty epoch sealed");
    es.advance();
    oracle.epoch_drained(charged_this_epoch);
    assert_eq!(es.buffered_words(), oracle.value, "seal + drain exact");
    assert_eq!(es.buffered_words(), 0, "fully quiesced system is empty");
}

#[test]
fn multi_threaded_stripe_sum_matches_global_oracle_at_seals() {
    let (track_cost, _) = calibrate(2);
    let es = fresh(EpochConfig::manual());
    let mut oracle = Oracle::default();

    const THREADS: usize = 6;
    const OPS: usize = 25;

    // Each thread: OPS ops; every 5th op is aborted after tracking,
    // every 3rd op double-tracks its block. All tracking lands in the
    // current epoch (no advances run concurrently), so after joining,
    // the stripe sum must equal the oracle total exactly.
    let mut charged = 0u64;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let es = Arc::clone(&es);
        handles.push(std::thread::spawn(move || {
            for i in 0..OPS {
                es.begin_op();
                let b = es.p_new(2);
                es.p_track(b);
                if (t + i) % 3 == 0 {
                    es.p_track(b); // duplicate
                }
                if i % 5 == 4 {
                    es.abort_op();
                } else {
                    es.end_op();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Replay the same schedule into the oracle.
    for t in 0..THREADS {
        for i in 0..OPS {
            let mut op_words = track_cost;
            oracle.track(1, track_cost);
            if (t + i) % 3 == 0 {
                oracle.track(1, track_cost);
                op_words += track_cost;
            }
            if i % 5 == 4 {
                oracle.abort(op_words);
            } else {
                charged += op_words;
            }
        }
    }
    assert_eq!(
        es.buffered_words(),
        oracle.value,
        "stripe sum after join equals old global counter"
    );

    es.advance(); // seals the pre-workload epoch (empty)
    assert_eq!(es.buffered_words(), oracle.value, "empty seal is a no-op");
    es.advance(); // seals + drains the workload epoch
    oracle.epoch_drained(charged);
    assert_eq!(es.buffered_words(), oracle.value, "exact at seal boundary");
    assert_eq!(es.buffered_words(), 0);
}

#[test]
fn pipelined_seal_boundaries_match_oracle_until_batch_persists() {
    let (track_cost, _) = calibrate(2);
    // Background persistence with a hand-driven persister: seals and
    // write-backs are decoupled, so the accounting must hold words
    // until the *batch* persists, not just until the seal.
    let es = fresh(
        EpochConfig::manual()
            .with_background_persist(true)
            .with_pipeline_depth(2),
    );
    let mut oracle = Oracle::default();
    es.attach_persister();

    let mut charged = 0u64;
    es.begin_op();
    for _ in 0..4 {
        let b = es.p_new(2);
        es.p_track(b);
        oracle.track(1, track_cost);
        charged += track_cost;
    }
    es.end_op();

    es.advance(); // empty epoch sealed
    es.advance(); // workload epoch sealed into an in-flight batch
    assert_eq!(
        es.buffered_words(),
        oracle.value,
        "sealed-but-unpersisted batch still counted (no distinct blocks \
         were deduped, so seal alone refunds nothing)"
    );
    assert!(es.batches_in_flight() > 0, "batch must be in flight");

    while es.persist_next_batch() {}
    oracle.epoch_drained(charged);
    assert_eq!(
        es.buffered_words(),
        oracle.value,
        "batch completion drains exactly the sealed epoch's charge"
    );
    assert_eq!(es.buffered_words(), 0);
    es.detach_persister();
}
