//! The central BDL guarantee (§2.1): after a crash, the structure
//! recovers to a *consistent prefix of the linearization order* — here
//! verified exactly: the recovered state equals the replay of precisely
//! the operations whose epochs are at or below the persisted frontier.

use bd_htm::prelude::*;
use std::sync::Arc;

// The single-threaded exact-prefix check that used to live here is now
// part of the generic `BdlKv` conformance suite
// (`tests/bdl_conformance.rs`), which runs it for every structure. This
// file keeps the concurrent variant, whose shared-map multi-writer
// history the single-threaded suite cannot express.

/// Multi-threaded variant: per-key monotone counters. After a crash, each
/// recovered value must be one the key actually held in a durable epoch,
/// and every key whose *final durable* write happened at least two epochs
/// before the crash must be present with that exact value.
#[test]
fn concurrent_history_recovers_a_consistent_cut() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
    let esys = EpochSys::format(heap, EpochConfig::default());
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let map = Arc::new(BdhtHashMap::new(1 << 10, Arc::clone(&esys), htm));

    let keys = 64u64;
    let writers = 4u64;
    // Each thread owns a disjoint key set and writes increasing values.
    std::thread::scope(|s| {
        for t in 0..writers {
            let map = Arc::clone(&map);
            s.spawn(move || {
                for v in 1..=400u64 {
                    for key in (t * keys / writers)..((t + 1) * keys / writers) {
                        map.insert(key, v);
                    }
                }
            });
        }
        let esys = Arc::clone(&esys);
        s.spawn(move || {
            for _ in 0..25 {
                esys.advance();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
    });
    // Quiesce: one more full flush, then two more epochs of writes that
    // will be lost.
    esys.flush_all();
    for key in 0..keys {
        map.insert(key, 10_000);
    }

    let heap2 = Arc::new(NvmHeap::from_image(esys.heap().crash()));
    let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 2);
    let map2 = BdhtHashMap::recover(
        1 << 10,
        esys2,
        Arc::new(Htm::new(HtmConfig::default())),
        &live,
    );
    for key in 0..keys {
        let v = map2.get(key).expect("durably written key lost");
        assert!(
            (1..=400).contains(&v),
            "key {key}: recovered {v}, which was never durable (10_000 was post-flush)"
        );
    }
}
