//! The central BDL guarantee (§2.1): after a crash, the structure
//! recovers to a *consistent prefix of the linearization order* — here
//! verified exactly: the recovered state equals the replay of precisely
//! the operations whose epochs are at or below the persisted frontier.

use bd_htm::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Clone, Copy, Debug)]
enum LoggedOp {
    Insert(u64, u64),
    Remove(u64),
}

/// Runs a deterministic single-threaded history with interleaved epoch
/// advances and random crash points, and checks the recovered state is
/// the exact R-prefix replay.
#[test]
fn recovered_state_is_exactly_the_durable_prefix() {
    for crash_after in [50usize, 333, 777, 1500, 2999] {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20)));
        let esys = EpochSys::format(heap, EpochConfig::default());
        let htm = Arc::new(Htm::new(HtmConfig::default()));
        let map = BdhtHashMap::new(1 << 9, Arc::clone(&esys), htm);

        let mut log: Vec<(u64, LoggedOp)> = Vec::new();
        let mut rng = 0xA5A5_0000u64 + crash_after as u64;
        let mut next = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for i in 0..3000usize {
            if i == crash_after {
                break;
            }
            if next() % 97 == 0 {
                esys.advance();
            }
            // Adversarial cache-replacement order.
            if next() % 53 == 0 {
                esys.heap().evict_random_lines(8, next());
            }
            let e = esys.current_epoch();
            let key = next() % 256;
            if next() % 3 == 0 {
                map.remove(key);
                log.push((e, LoggedOp::Remove(key)));
            } else {
                let v = next();
                map.insert(key, v);
                log.push((e, LoggedOp::Insert(key, v)));
            }
        }

        // Crash and recover.
        let heap2 = Arc::new(NvmHeap::from_image(esys.heap().crash()));
        let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 1);
        let r = esys2.persisted_frontier();
        let map2 = BdhtHashMap::recover(
            1 << 9,
            esys2,
            Arc::new(Htm::new(HtmConfig::default())),
            &live,
        );

        // Replay exactly the ops with epoch <= R.
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for (e, op) in &log {
            if *e > r {
                // Single-threaded history: later epochs are a strict
                // suffix, so we can stop at the first too-new epoch.
                break;
            }
            match op {
                LoggedOp::Insert(k, v) => {
                    oracle.insert(*k, *v);
                }
                LoggedOp::Remove(k) => {
                    oracle.remove(k);
                }
            }
        }
        for key in 0..256u64 {
            assert_eq!(
                map2.get(key),
                oracle.get(&key).copied(),
                "crash_after={crash_after}, R={r}: key {key} diverges from the durable prefix"
            );
        }
    }
}

/// Multi-threaded variant: per-key monotone counters. After a crash, each
/// recovered value must be one the key actually held in a durable epoch,
/// and every key whose *final durable* write happened at least two epochs
/// before the crash must be present with that exact value.
#[test]
fn concurrent_history_recovers_a_consistent_cut() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
    let esys = EpochSys::format(heap, EpochConfig::default());
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let map = Arc::new(BdhtHashMap::new(1 << 10, Arc::clone(&esys), htm));

    let keys = 64u64;
    let writers = 4u64;
    // Each thread owns a disjoint key set and writes increasing values.
    std::thread::scope(|s| {
        for t in 0..writers {
            let map = Arc::clone(&map);
            s.spawn(move || {
                for v in 1..=400u64 {
                    for key in (t * keys / writers)..((t + 1) * keys / writers) {
                        map.insert(key, v);
                    }
                }
            });
        }
        let esys = Arc::clone(&esys);
        s.spawn(move || {
            for _ in 0..25 {
                esys.advance();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
    });
    // Quiesce: one more full flush, then two more epochs of writes that
    // will be lost.
    esys.flush_all();
    for key in 0..keys {
        map.insert(key, 10_000);
    }

    let heap2 = Arc::new(NvmHeap::from_image(esys.heap().crash()));
    let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 2);
    let map2 = BdhtHashMap::recover(
        1 << 10,
        esys2,
        Arc::new(Htm::new(HtmConfig::default())),
        &live,
    );
    for key in 0..keys {
        let v = map2.get(key).expect("durably written key lost");
        assert!(
            (1..=400).contains(&v),
            "key {key}: recovered {v}, which was never durable (10_000 was post-flush)"
        );
    }
}
