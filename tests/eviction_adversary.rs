//! Adversarial cache-replacement testing: BDL correctness must not
//! depend on *which* dirty lines happen to reach media before a crash
//! (§2.3's point-of-visibility vs point-of-persistence discrepancy).
//! These tests hammer random eviction throughout the workload, crash at
//! many points, and verify recovered states are consistent.

use bd_htm::prelude::*;
use std::sync::Arc;

/// Runs a deterministic workload on a structure with heavy random
/// eviction, crashes at `crash_at` operations, and returns the
/// per-key expected map for epochs up to the recovered frontier.
fn eviction_storm<I>(seed: u64, crash_at: usize, mut insert: I, esys: &Arc<EpochSys>)
where
    I: FnMut(u64, u64),
{
    let mut rng = seed | 1;
    for i in 0..crash_at {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        let key = rng % 128;
        insert(key, rng);
        if i % 7 == 0 {
            esys.heap().evict_random_lines(16, rng);
        }
        if i % 151 == 0 {
            esys.advance();
        }
    }
}

#[test]
fn bdl_skiplist_survives_eviction_storms() {
    for seed in [1u64, 99, 12345] {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20)));
        let esys = EpochSys::format(heap, EpochConfig::default());
        let htm = Arc::new(Htm::new(HtmConfig::default()));
        let list = BdlSkiplist::new(Arc::clone(&esys), Arc::clone(&htm));
        // Track what each key was last set to, per epoch.
        let mut writes: Vec<(u64, u64, u64)> = Vec::new(); // (epoch, key, val)
        {
            let esys2 = Arc::clone(&esys);
            eviction_storm(
                seed,
                900,
                |k, v| {
                    writes.push((esys2.current_epoch(), k + 1, v));
                    list.insert(k + 1, v);
                },
                &esys,
            );
        }
        let heap2 = Arc::new(NvmHeap::from_image(esys.heap().crash()));
        let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 1);
        let r = esys2.persisted_frontier();
        let list2 = BdlSkiplist::recover(esys2, Arc::new(Htm::new(HtmConfig::default())), &live, 1);

        // Single-threaded history: the durable prefix is exact.
        let mut expect = std::collections::HashMap::new();
        for (e, k, v) in &writes {
            if *e > r {
                break;
            }
            expect.insert(*k, *v);
        }
        for k in 1..129u64 {
            assert_eq!(
                list2.get(k),
                expect.get(&k).copied(),
                "seed {seed}: key {k} diverged (R={r})"
            );
        }
    }
}

#[test]
fn bd_spash_survives_eviction_storms() {
    for seed in [7u64, 4242] {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20)));
        let esys = EpochSys::format(heap, EpochConfig::default());
        let htm = Arc::new(Htm::new(HtmConfig::default()));
        let table = BdSpash::new(Arc::clone(&esys), Arc::clone(&htm));
        let mut writes: Vec<(u64, u64, u64)> = Vec::new();
        {
            let esys2 = Arc::clone(&esys);
            eviction_storm(
                seed,
                1100,
                |k, v| {
                    writes.push((esys2.current_epoch(), k, v));
                    table.insert(k, v);
                },
                &esys,
            );
        }
        let heap2 = Arc::new(NvmHeap::from_image(esys.heap().crash()));
        let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 1);
        let r = esys2.persisted_frontier();
        let table2 = BdSpash::recover(esys2, Arc::new(Htm::new(HtmConfig::default())), &live);
        let mut expect = std::collections::HashMap::new();
        for (e, k, v) in &writes {
            if *e > r {
                break;
            }
            expect.insert(*k, *v);
        }
        for k in 0..128u64 {
            assert_eq!(
                table2.get(k),
                expect.get(&k).copied(),
                "seed {seed}: key {k} diverged (R={r})"
            );
        }
    }
}

/// The systematic version of the storms above, covering all three BDL
/// structure families uniformly: the crash-point driver enumerates
/// every persist boundary of an eviction-heavy mixed workload —
/// including the `EvictLine` points inside `evict_random_lines` itself
/// — and crashes at an even stride of them. Each replay must recover
/// to the exact durable prefix and pass the structure's `validate()`.
#[test]
fn eviction_heavy_crash_point_sweep_all_structures() {
    use fault::{sweep, SweepConfig};
    let mut cfg = SweepConfig::quick(0xE71C_7103);
    cfg.ops = 120;
    cfg.advance_every = 16;
    cfg.keys = 64;
    // Much heavier eviction pressure than the quick default: a burst of
    // lines every few operations, so crash points land inside eviction
    // write-backs throughout the run.
    cfg.evict_every = 5;
    cfg.evict_lines = 12;
    let cfg = cfg.with_max_replays(30);
    for r in [
        sweep::<PhtmVeb>(&cfg),
        sweep::<BdlSkiplist>(&cfg),
        sweep::<BdSpash>(&cfg),
    ] {
        assert!(
            r.passed(),
            "{}: {}/{} eviction-storm replays failed; first: {}",
            r.structure,
            r.failures.len(),
            r.replays,
            r.failures[0]
        );
        assert!(r.points >= 100, "{}: only {} points", r.structure, r.points);
    }
}

/// Eviction must never *help* either: data evicted to media from a
/// discarded epoch must still be rolled back by recovery (the block's
/// epoch tag exceeds the frontier even though its bytes hit media).
#[test]
fn evicted_but_undurable_epochs_are_still_discarded() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(16 << 20)));
    let esys = EpochSys::format(heap, EpochConfig::default());
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let tree = PhtmVeb::new(10, Arc::clone(&esys), htm);
    tree.insert(1, 100);
    esys.advance();
    esys.advance(); // (1 -> 100) durable
    tree.insert(1, 200); // current epoch
                         // Force EVERYTHING to media, including the new version's block.
    for seed in 0..64 {
        esys.heap().evict_random_lines(256, seed);
    }
    let heap2 = Arc::new(NvmHeap::from_image(esys.heap().crash()));
    let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 1);
    let tree2 = PhtmVeb::recover(
        10,
        esys2,
        Arc::new(Htm::new(HtmConfig::default())),
        &live,
        1,
    );
    assert_eq!(
        tree2.get(1),
        Some(100),
        "an evicted-but-undurable update leaked into the recovered state"
    );
}
