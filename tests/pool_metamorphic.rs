//! Metamorphic check of the persister pool (DESIGN.md §3.4.4): the
//! durable heap image a crash exposes must be *bit-identical* whatever
//! the pool width or pipeline depth, because chunking only re-orders
//! write-backs **within** one epoch batch — the fence, the frontier
//! publish and reclamation still happen once per batch, in epoch
//! order. Any divergence (a lost range, a mis-partitioned chunk, a
//! publish that jumped a batch) shows up as a digest mismatch.
//!
//! Two variants:
//!
//! * **deferred drain** — a retire-heavy workload runs with an attached
//!   (but inert) persister, so every batch queues up untouched and the
//!   allocation sequence is identical across runs; then a real
//!   [`Persister`] pool of each width drains the backlog.
//! * **live pool** — insert-only workloads (no reclamation, so
//!   allocation stays deterministic under concurrent write-back) run
//!   against live pools of every width × pipeline depth, compared
//!   against the fully synchronous inline-persist baseline.

use bd_htm::bdhtm_core::Persister;
use bd_htm::prelude::*;
use std::sync::Arc;

/// FNV-1a over the full crash image.
fn image_digest(img: &nvm_sim::CrashImage) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..img.len_words() {
        let w = img.word(nvm_sim::NvmAddr(i as u64));
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn stack(ec: EpochConfig) -> (Arc<NvmHeap>, Arc<EpochSys>, BdhtHashMap) {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(16 << 20)));
    let esys = EpochSys::format(Arc::clone(&heap), ec);
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let map = BdhtHashMap::new(1 << 9, Arc::clone(&esys), htm);
    (heap, esys, map)
}

/// Deferred-drain variant: insert/remove churn (retires included) is
/// sealed into a backlog of untouched batches, then a pool of the given
/// width drains it. Returns the post-crash image digest.
fn deferred_drain_digest(workers: usize) -> u64 {
    let (heap, esys, map) = stack(
        EpochConfig::manual()
            .with_persist_workers(workers)
            // Deep enough that sealing the whole backlog never stalls
            // the clock while nothing is draining.
            .with_pipeline_depth(64),
    );
    // Inert hand-driven registration: advances seal and enqueue, and
    // nothing reclaims mid-workload, so every run allocates the same
    // block sequence regardless of width.
    esys.attach_persister();
    for k in 0..240u64 {
        assert!(map.insert(k, k * 3 + 1));
        if k % 3 == 0 {
            map.remove(k / 2);
        }
        if k % 24 == 23 {
            esys.advance();
        }
    }
    esys.advance();
    esys.detach_persister();

    // A real pool (coordinator + workers−1 chunk threads) drains the
    // backlog; flush_all waits until the frontier covers it all.
    let persister = Persister::spawn(Arc::clone(&esys));
    esys.flush_all();
    persister.stop();
    assert_eq!(esys.buffered_words(), 0);
    assert_eq!(esys.persisted_frontier(), esys.current_epoch() - 2);
    image_digest(&heap.crash())
}

/// Live-pool variant: insert-only workload against a running pool of
/// the given width and pipeline depth (`None` = synchronous inline
/// persistence). Returns the post-crash image digest.
fn live_pool_digest(pool: Option<(usize, usize)>) -> u64 {
    let ec = match pool {
        Some((workers, depth)) => EpochConfig::manual()
            .with_persist_workers(workers)
            .with_pipeline_depth(depth),
        None => EpochConfig::manual().with_background_persist(false),
    };
    let (heap, esys, map) = stack(ec);
    let persister = pool.map(|_| Persister::spawn(Arc::clone(&esys)));
    for k in 0..300u64 {
        assert!(map.insert(k, k + 7));
        if k % 25 == 24 {
            esys.advance();
        }
    }
    esys.flush_all();
    if let Some(p) = persister {
        p.stop();
    }
    assert_eq!(esys.buffered_words(), 0);
    assert_eq!(esys.persisted_frontier(), esys.current_epoch() - 2);
    image_digest(&heap.crash())
}

/// Pool widths 1 (the serial persister), 2 and 8 (the cap) must drain
/// an identical batch backlog — retires and all — to bit-identical
/// durable images.
#[test]
fn deferred_drain_image_is_width_invariant() {
    let serial = deferred_drain_digest(1);
    for workers in [2, 8] {
        assert_eq!(
            deferred_drain_digest(workers),
            serial,
            "pool width {workers} diverged from the serial persister"
        );
    }
}

/// Every live pool shape (width × pipeline depth) must produce the
/// same durable image as fully synchronous inline persistence.
#[test]
fn live_pool_image_matches_synchronous_baseline() {
    let baseline = live_pool_digest(None);
    for depth in 1..=3usize {
        for workers in [1, 2, 8] {
            assert_eq!(
                live_pool_digest(Some((workers, depth))),
                baseline,
                "pool width {workers} depth {depth} diverged from sync baseline"
            );
        }
    }
}
