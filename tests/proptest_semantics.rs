//! Property-based semantics tests: every structure must agree with a
//! `std` reference model over arbitrary operation sequences, including
//! ordered queries and epoch advances at arbitrary points.

use bd_htm::prelude::*;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Action {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Successor(u16),
    Predecessor(u16),
    Advance,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Action::Insert(k, v)),
        2 => any::<u16>().prop_map(Action::Remove),
        2 => any::<u16>().prop_map(Action::Get),
        1 => any::<u16>().prop_map(Action::Successor),
        1 => any::<u16>().prop_map(Action::Predecessor),
        1 => Just(Action::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn phtm_veb_matches_btreemap(actions in proptest::collection::vec(action_strategy(), 1..300)) {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20)));
        let esys = EpochSys::format(heap, EpochConfig::default());
        let htm = Arc::new(Htm::new(HtmConfig::default()));
        let tree = PhtmVeb::new(16, Arc::clone(&esys), htm);
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for a in actions {
            match a {
                Action::Insert(k, v) => {
                    let (k, v) = (k as u64, v as u64);
                    prop_assert_eq!(tree.insert(k, v), oracle.insert(k, v).is_none());
                }
                Action::Remove(k) => {
                    let k = k as u64;
                    prop_assert_eq!(tree.remove(k), oracle.remove(&k).is_some());
                }
                Action::Get(k) => {
                    let k = k as u64;
                    prop_assert_eq!(tree.get(k), oracle.get(&k).copied());
                }
                Action::Successor(k) => {
                    let k = k as u64;
                    let want = oracle.range(k + 1..).next().map(|(&a, &b)| (a, b));
                    prop_assert_eq!(tree.successor(k), want);
                }
                Action::Predecessor(k) => {
                    let k = k as u64;
                    let want = oracle.range(..k).next_back().map(|(&a, &b)| (a, b));
                    prop_assert_eq!(tree.predecessor(k), want);
                }
                Action::Advance => esys.advance(),
            }
        }
    }

    #[test]
    fn bdl_skiplist_matches_model(actions in proptest::collection::vec(action_strategy(), 1..250)) {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20)));
        let esys = EpochSys::format(heap, EpochConfig::default());
        let htm = Arc::new(Htm::new(HtmConfig::default()));
        let list = BdlSkiplist::new(Arc::clone(&esys), htm);
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for a in actions {
            match a {
                Action::Insert(k, v) => {
                    let (k, v) = (k as u64 + 1, v as u64);
                    prop_assert_eq!(list.insert(k, v), oracle.insert(k, v).is_none());
                }
                Action::Remove(k) => {
                    let k = k as u64 + 1;
                    prop_assert_eq!(list.remove(k), oracle.remove(&k).is_some());
                }
                Action::Get(k) => {
                    let k = k as u64 + 1;
                    prop_assert_eq!(list.get(k), oracle.get(&k).copied());
                }
                Action::Advance => esys.advance(),
                _ => {}
            }
        }
        prop_assert_eq!(list.len(), oracle.len());
    }

    #[test]
    fn bd_spash_matches_model(actions in proptest::collection::vec(action_strategy(), 1..250)) {
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20)));
        let esys = EpochSys::format(heap, EpochConfig::default());
        let htm = Arc::new(Htm::new(HtmConfig::default()));
        let table = BdSpash::new(Arc::clone(&esys), htm);
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for a in actions {
            match a {
                Action::Insert(k, v) => {
                    let (k, v) = (k as u64, v as u64);
                    prop_assert_eq!(table.insert(k, v), oracle.insert(k, v).is_none());
                }
                Action::Remove(k) => {
                    let k = k as u64;
                    prop_assert_eq!(table.remove(k), oracle.remove(&k).is_some());
                }
                Action::Get(k) => {
                    let k = k as u64;
                    prop_assert_eq!(table.get(k), oracle.get(&k).copied());
                }
                Action::Advance => esys.advance(),
                _ => {}
            }
        }
    }

    #[test]
    fn dl_skiplist_crash_recovery_is_exact(
        keys in proptest::collection::btree_set(0u64..500, 1..80),
        removes in proptest::collection::vec(0u64..500, 0..40),
    ) {
        // Strict durability: *every* completed operation survives.
        let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(32 << 20)));
        let list = DlSkiplist::new(Arc::clone(&heap), PersistMode::Strict);
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &keys {
            list.insert(k, k + 1);
            oracle.insert(k, k + 1);
        }
        for &k in &removes {
            list.remove(k);
            oracle.remove(&k);
        }
        let heap2 = Arc::new(NvmHeap::from_image(heap.crash()));
        let (list2, _) = DlSkiplist::recover(heap2);
        for k in 0..500u64 {
            prop_assert_eq!(list2.get(k), oracle.get(&k).copied());
        }
    }
}
