#!/usr/bin/env bash
# Regenerates every figure/table of the paper. Outputs land in results/.
# Knobs: BDHTM_SECS (per data point), BDHTM_THREADS, BDHTM_SCALE.
set -u
cd "$(dirname "$0")"
export BDHTM_SECS="${BDHTM_SECS:-0.5}"
export BDHTM_THREADS="${BDHTM_THREADS:-1,2,4}"
export BDHTM_SCALE="${BDHTM_SCALE:-6}"
mkdir -p results
for bin in fig1_veb_overhead fig2_abort_rates fig3_tree_comparison table3_space \
           fig4_mwcas fig5_skiplist fig6_hashtables fig7_epoch_length \
           fig8_nvm_space recovery_time; do
  echo "== $bin =="
  cargo run --release -q -p bench --bin "$bin" | tee "results/$bin.txt"
done
