#!/usr/bin/env bash
# Offline CI gate: everything here runs with no network access.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

# Global per-invocation timeout: a hung test run must become a CI
# failure, not a wedged pipeline. Uses coreutils timeout when present.
with_timeout() {
    if command -v timeout >/dev/null 2>&1; then
        timeout --signal=KILL "$1" "${@:2}"
    else
        "${@:2}"
    fi
}

echo "==> cargo test -q"
with_timeout 1800 cargo test -q --workspace

echo "==> chaos stress gate (formerly-quarantined skiplist workloads)"
# The two historically flaky concurrent skiplist tests (DL and BDL mixed
# ops), now un-quarantined (DESIGN.md §5.3), run 200 iterations under seeded
# deterministic-interleaving schedules (htm_sim::chaos). Split into four
# 50-iteration processes: thread ids are dense process-lifetime values
# with a budget of 1024, and every iteration spawns a fresh worker set.
# A failure prints the seed and the recorded schedule tail; replay with
#   ./target/release/chaos_stress --iters 1 --seed-base <seed>
for base in 0xC4A05EED 0xC4A05F1F 0xC4A05F51 0xC4A05F83; do
    with_timeout 900 ./target/release/chaos_stress \
        --iters 50 --seed-base "$base" --watchdog-secs 120
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> examples build and run"
for ex in quickstart kv_store ordered_index crash_recovery; do
    echo "--- example: $ex"
    cargo run --release -q --example "$ex"
done

echo "==> metrics smoke (quickstart --metrics-json + validation)"
cargo run --release -q --example quickstart -- --metrics-json target/metrics-smoke.json
./target/release/metrics_check target/metrics-smoke.json

echo "==> durability-lag telemetry smoke (series + trace on a pipelined run)"
# A short pipelined fig7 run streaming the metrics time series and the
# Perfetto trace; metrics_check validates all three artifacts (report
# invariants incl. v3 lag quantiles, dense/monotone series, balanced
# trace flow arrows). The report must carry nonzero durability-lag
# samples: pipelined mode always defers durability behind commit.
BDHTM_SECS=0.25 BDHTM_SCALE=12 BDHTM_THREADS=2 \
    ./target/release/fig7_epoch_length --pipeline=bg \
    --metrics-json target/lag-smoke.json \
    --metrics-series target/lag-smoke.jsonl --series-interval-ms 20 \
    --trace-out target/lag-smoke-trace.json >/dev/null
./target/release/metrics_check target/lag-smoke.json
./target/release/metrics_check --series target/lag-smoke.jsonl
./target/release/metrics_check --trace target/lag-smoke-trace.json
lag_count=$(grep -o '"durability_lag_ns":{"unit":"ns","count":[0-9]*' \
    target/lag-smoke.json | grep -o '[0-9]*$')
[ "${lag_count:-0}" -gt 0 ] || {
    echo "pipelined run recorded no durability-lag spans"; exit 1; }
echo "durability-lag smoke OK (${lag_count} spans)"

echo "==> println! hygiene (library code logs via metrics/trace, not stdout)"
# Benches and examples print; library crates must not (stderr via
# eprintln! is fine — it does not corrupt machine-readable stdout).
# bin/, tests, and in-file #[cfg(test)] modules are exempt.
# The filter greps legitimately match nothing when every println! is
# in bin/; `|| true` keeps that from tripping pipefail + set -e.
stray=$(grep -rnE '(^|[^e])println!' crates/*/src --include='*.rs' \
    | { grep -vE '/bin/|/tests/' || true; } \
    | while IFS=: read -r file line _; do
        # exempt matches inside the file's trailing test module
        testline=$(grep -n '#\[cfg(test)\]' "$file" | head -1 | cut -d: -f1)
        if [ -z "$testline" ] || [ "$line" -lt "$testline" ]; then
            echo "$file:$line"
        fi
    done)
if [ -n "$stray" ]; then
    echo "stray println! in library code:"; echo "$stray"; exit 1
fi

echo "==> fault sweep digest (behavior-preservation pin)"
# Expected value lives in one place: fault::digest::PINNED_SWEEP_DIGEST.
FAULT_SEED=0xBD15EED ./target/release/fault_sweep --digest --check

echo "==> fault sweep smoke (pinned FAULT_SEED, incl. pipelined modes)"
with_timeout 600 env FAULT_SEED=0xBD15EED ./target/release/fault_sweep --ops 160 --replays 40

echo "==> runtime fault gate (device faults: retry/degrade/fail-stop)"
# The live-system counterpart of the crash sweeps (DESIGN.md §5.2):
# seeded transient device-fault schedules across all three structure
# families, over a small pinned seed set.
for seed in 0xBD15EED 0xD15EA5E 0xBD15EE0; do
    with_timeout 600 env FAULT_SEED=$seed ./target/release/fault_sweep --modes runtime
done

echo "==> persist-pipeline perf gate (fig7 sync vs pipelined)"
# Gate-mode fig7 runs in both persistence modes: each drives exactly 40
# epoch advances, so the two advance_ns histograms have identical sample
# counts (metrics_check rejects the comparison otherwise) and the p99s
# are computed over the same population. The pipelined p99 must beat the
# synchronous one and write amplification must not regress (intake-time
# dedup). Timing gate: retried once before failing.
run_fig7_compare() {
    BDHTM_SCALE=12 \
        ./target/release/fig7_epoch_length --pipeline=sync --gate-advances 40 \
        --metrics-json target/fig7-sync.json >/dev/null
    BDHTM_SCALE=12 \
        ./target/release/fig7_epoch_length --pipeline=bg --gate-advances 40 \
        --metrics-json target/fig7-bg.json >/dev/null
    ./target/release/metrics_check --compare-pipeline \
        target/fig7-sync.json target/fig7-bg.json --out BENCH_pipeline.json
}
run_fig7_compare || { echo "retrying pipeline perf gate once"; run_fig7_compare; }
echo "pipeline comparison written to BENCH_pipeline.json"

echo "==> persister-pool perf gate (persist_pool)"
# Sharded write-back (DESIGN.md §3.4.4): fanning one sealed batch's
# flush plan across 4 pool workers must beat the serial persister by
# >= 1.3x under simulated per-line NVM latency. Both legs run through
# the identical public Persister::spawn path; only the pool width
# differs. Timing gate: retried once before failing.
run_pool_compare() {
    ./target/release/persist_pool --workers 4 \
        --min-ratio 1.3 --metrics-json BENCH_persist_pool.json
}
run_pool_compare || { echo "retrying persister-pool perf gate once"; run_pool_compare; }
echo "persister-pool comparison written to BENCH_persist_pool.json"

echo "==> sharded-accounting perf gate (epoch_contention)"
# Hot-path smoke for the esys/ decomposition (DESIGN.md §3.4.3): the
# sharded begin/track/end path must beat a faithful emulation of the
# pre-refactor per-op costs (3x thread-state mutex + global fetch_add)
# by >= 1.3x at 8 threads. Measured ~2x on the CI container; retried
# once because it is a timing gate.
run_shard_compare() {
    ./target/release/epoch_contention --threads 8 --secs 0.3 \
        --min-ratio 1.3 --metrics-json BENCH_shard.json
}
run_shard_compare || { echo "retrying shard perf gate once"; run_shard_compare; }
echo "shard comparison written to BENCH_shard.json"

echo "==> ci.sh: all gates passed"
