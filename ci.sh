#!/usr/bin/env bash
# Offline CI gate: everything here runs with no network access.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fault sweep smoke (pinned FAULT_SEED)"
FAULT_SEED=0xBD15EED ./target/release/fault_sweep --ops 160 --replays 40

echo "==> ci.sh: all gates passed"
