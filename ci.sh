#!/usr/bin/env bash
# Offline CI gate: everything here runs with no network access.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> examples build and run"
for ex in quickstart kv_store ordered_index crash_recovery; do
    echo "--- example: $ex"
    cargo run --release -q --example "$ex"
done

echo "==> metrics smoke (quickstart --metrics-json + validation)"
cargo run --release -q --example quickstart -- --metrics-json target/metrics-smoke.json
./target/release/metrics_check target/metrics-smoke.json

echo "==> fault sweep digest (behavior-preservation pin)"
DIGEST="$(FAULT_SEED=0xBD15EED ./target/release/fault_sweep --digest)"
EXPECTED="0xc80ad7894b7a0701"
if [ "$DIGEST" != "$EXPECTED" ]; then
    echo "pinned-seed sweep digest changed: got $DIGEST, want $EXPECTED" >&2
    echo "(a refactor altered crash-point schedules or recovery outcomes;" >&2
    echo " if the change is intentional, update EXPECTED in ci.sh)" >&2
    exit 1
fi
echo "digest $DIGEST == $EXPECTED"

echo "==> fault sweep smoke (pinned FAULT_SEED)"
FAULT_SEED=0xBD15EED ./target/release/fault_sweep --ops 160 --replays 40

echo "==> ci.sh: all gates passed"
