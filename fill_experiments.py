#!/usr/bin/env python3
"""Substitutes results/*.txt into the {{...}} slots of EXPERIMENTS.md.

Run after ./run_experiments.sh. Verdict slots are left for hand-editing
if not already filled.
"""
import pathlib, re, sys

root = pathlib.Path(__file__).parent
md = (root / "EXPERIMENTS.md").read_text()
slots = {
    "FIG1": "fig1_veb_overhead", "FIG2": "fig2_abort_rates",
    "FIG3": "fig3_tree_comparison", "TABLE3": "table3_space",
    "FIG4": "fig4_mwcas", "FIG5": "fig5_skiplist",
    "FIG6": "fig6_hashtables", "FIG7": "fig7_epoch_length",
    "FIG8": "fig8_nvm_space", "RECOVERY": "recovery_time",
}
for slot, fname in slots.items():
    path = root / "results" / f"{fname}.txt"
    text = path.read_text().strip() if path.exists() else "(not yet run)"
    md = md.replace("{{%s}}" % slot, text)
(root / "EXPERIMENTS.md").write_text(md)
print("filled", ", ".join(s for s in slots))
