//! An ordered database index built on the buffered-durable vEB tree.
//!
//! The motivating workload of §4.1: a storage engine needs an index with
//! fast point operations *and* successor/range queries. PHTM-vEB gives
//! doubly logarithmic operations while keeping crash consistency aligned
//! with the (buffered) storage system underneath.
//!
//! ```sh
//! cargo run --release --example ordered_index
//! ```

use bd_htm::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(256 << 20)));
    let esys = EpochSys::format(Arc::clone(&heap), EpochConfig::default());
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let ubits = 20;
    let index = Arc::new(PhtmVeb::new(ubits, Arc::clone(&esys), Arc::clone(&htm)));

    // Concurrent bulk load: 4 threads, interleaved "order ids".
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let index = Arc::clone(&index);
            s.spawn(move || {
                let mut k = 2 * tid; // even keys only, striped per thread
                while k < 1 << ubits {
                    index.insert(k, k.wrapping_mul(2654435761));
                    k += 8;
                }
            });
        }
    });
    println!(
        "loaded {} keys in {:?} across 4 threads",
        1 << (ubits - 1),
        t0.elapsed()
    );

    // Point lookups.
    assert_eq!(index.get(42), Some(42u64.wrapping_mul(2654435761)));
    assert_eq!(index.get(43), None); // odd keys were not loaded

    // Ordered queries — the reason to pay vEB's space cost.
    let (next_key, _) = index.successor(42).unwrap();
    println!("successor(42) = {next_key}");
    assert_eq!(next_key, 44);
    let (prev_key, _) = index.predecessor(42).unwrap();
    assert_eq!(prev_key, 40);

    let t0 = Instant::now();
    let range = index.range(1000, 1200);
    println!(
        "range [1000, 1200) returned {} pairs in {:?}",
        range.len(),
        t0.elapsed()
    );
    assert_eq!(range.len(), 100);

    // Make everything durable, then crash and rebuild the index.
    esys.flush_all();
    esys.advance();
    let image = heap.crash(); // (simulator copy, not a measured phase)
    let heap2 = Arc::new(NvmHeap::from_image(image));
    let t0 = Instant::now();
    let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 4);
    let scan_time = t0.elapsed();
    let t0 = Instant::now();
    let index2 = PhtmVeb::recover(
        ubits,
        esys2,
        Arc::new(Htm::new(HtmConfig::default())),
        &live,
        4,
    );
    println!(
        "recovery: heap scan {:?} ({} blocks), index rebuild {:?}",
        scan_time,
        live.len(),
        t0.elapsed()
    );
    assert_eq!(index2.range(1000, 1200).len(), 100);
    println!("ordered queries work on the rebuilt index ✓");
}
