//! Failure-injection tour: crash all three case-study structures at an
//! arbitrary point — with adversarially random cache eviction running —
//! and verify each recovers to a consistent buffered-durable prefix.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use bd_htm::prelude::*;
use std::sync::Arc;

fn banner(s: &str) {
    println!("\n=== {s} ===");
}

fn main() {
    banner("PHTM-vEB tree (Sec 4.1)");
    veb_demo();
    banner("BDL-Skiplist (Sec 4.2)");
    skiplist_demo();
    banner("DL-Skiplist: strict durability + PMwCAS roll-back (Sec 4.2)");
    dl_demo();
    banner("BD-Spash (Sec 4.3)");
    spash_demo();
    println!("\nall structures recovered consistently ✓");
}

/// Runs `ops` operations with random eviction injected, crashes, and
/// returns the recovered epoch system + live blocks.
fn run_crash(
    esys: &Arc<EpochSys>,
    mut work: impl FnMut(u64),
    durable_until: u64,
    lost_from: u64,
) -> (Arc<EpochSys>, Vec<LiveBlock>) {
    let heap = Arc::clone(esys.heap());
    for k in 0..durable_until {
        work(k);
        if k % 64 == 0 {
            // Adversarial cache replacement: random dirty lines hit media
            // in arbitrary order. BDL recovery must tolerate any of it.
            heap.evict_random_lines(8, k);
        }
    }
    esys.advance();
    esys.advance(); // everything above is now durable
    for k in durable_until..lost_from {
        work(k); // current epoch: sacrificed by the crash
    }
    let image = heap.crash();
    let heap2 = Arc::new(NvmHeap::from_image(image));
    EpochSys::recover(heap2, EpochConfig::default(), 2)
}

fn veb_demo() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
    let esys = EpochSys::format(heap, EpochConfig::default());
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let tree = PhtmVeb::new(14, Arc::clone(&esys), Arc::clone(&htm));
    let (esys2, live) = run_crash(
        &esys,
        |k| {
            tree.insert(k, k + 1);
        },
        3000,
        3500,
    );
    let tree2 = PhtmVeb::recover(14, esys2, htm, &live, 2);
    for k in 0..3000 {
        assert_eq!(tree2.get(k), Some(k + 1), "durable key {k} lost");
    }
    let lost = (3000..3500).filter(|&k| tree2.get(k).is_some()).count();
    println!("3000 durable keys recovered; {lost}/500 in-flight keys survived (expected 0)");
    assert_eq!(lost, 0);
}

fn skiplist_demo() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
    let esys = EpochSys::format(heap, EpochConfig::default());
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let list = BdlSkiplist::new(Arc::clone(&esys), Arc::clone(&htm));
    let (esys2, live) = run_crash(
        &esys,
        |k| {
            list.insert(k + 1, (k + 1) * 10);
        },
        2000,
        2400,
    );
    let list2 = BdlSkiplist::recover(esys2, htm, &live, 2);
    assert_eq!(list2.len(), 2000);
    println!("2000 durable keys recovered, towers rebuilt in DRAM");
}

fn dl_demo() {
    // The strict structure: *every* completed op survives, no epochs.
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
    let list = DlSkiplist::new(Arc::clone(&heap), PersistMode::Strict);
    for k in 0..1500 {
        list.insert(k, k * 2);
    }
    for k in 0..500 {
        list.remove(k);
    }
    let heap2 = Arc::new(NvmHeap::from_image(heap.crash()));
    let (list2, (fwd, back)) = DlSkiplist::recover(heap2);
    println!("PMwCAS recovery: {fwd} rolled forward, {back} rolled back");
    assert_eq!(list2.len(), 1000);
    for k in 500..1500 {
        assert_eq!(list2.get(k), Some(k * 2));
    }
    println!("1000 strictly durable keys recovered (every completed op survived)");
}

fn spash_demo() {
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
    let esys = EpochSys::format(heap, EpochConfig::default());
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let table = BdSpash::new(Arc::clone(&esys), Arc::clone(&htm));
    let (esys2, live) = run_crash(
        &esys,
        |k| {
            table.insert(k, k ^ 0xFF);
        },
        4000,
        4600,
    );
    let table2 = BdSpash::recover(esys2, htm, &live);
    for k in 0..4000 {
        assert_eq!(table2.get(k), Some(k ^ 0xFF), "durable key {k} lost");
    }
    println!("4000 durable keys recovered through directory rebuild");
}
