//! Quickstart: a buffered-durable hash map on simulated HTM + NVM.
//!
//! Demonstrates the full lifecycle from the paper's Listing 1: create an
//! NVM heap, format the epoch system, run HTM-synchronized operations,
//! make them durable via epoch advancement, crash, and recover.
//!
//! ```sh
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --metrics-json m.json \
//!     --metrics-series s.jsonl --trace-out trace.json
//! ```

use bd_htm::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // The shared observability flags every experiment binary accepts:
    // --metrics-json, --metrics-series, --trace-out (see bench::cli).
    let mut sink = bench::MetricsSink::from_args();

    // 64 MiB of simulated NVM, zero added latency (semantics only).
    let heap = Arc::new(NvmHeap::new(NvmConfig::for_tests(64 << 20)));
    let esys = EpochSys::format(
        Arc::clone(&heap),
        EpochConfig::default().with_epoch_len(Duration::from_millis(5)),
    );
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    sink.attach_htm(&htm);
    sink.attach_esys(&esys);
    let map = BdhtHashMap::new(1 << 12, Arc::clone(&esys), Arc::clone(&htm));

    // A background thread advances epochs every 5 ms, persisting buffered
    // writes without ever touching the transactional critical path.
    let ticker = EpochTicker::spawn(Arc::clone(&esys));

    println!("inserting 10,000 pairs under HTM...");
    for k in 0..10_000u64 {
        map.insert(k, k * k);
    }
    assert_eq!(map.get(1234), Some(1234 * 1234));

    // Wait until everything inserted so far is durable (frontier catches
    // up to the epochs our operations ran in).
    let target = esys.current_epoch();
    while esys.persisted_frontier() + 1 < target {
        std::thread::sleep(Duration::from_millis(5));
    }
    ticker.stop();

    let stats = htm.stats().snapshot();
    println!(
        "HTM: {} commits, {} aborts ({:.2}% commit ratio), {} fallbacks",
        stats.commits,
        stats.total_aborts(),
        stats.commit_ratio() * 100.0,
        stats.fallbacks
    );
    let nvm = heap.stats().snapshot();
    println!(
        "NVM: {} line write-backs, {} XPLines touched, write amplification {:.2}",
        nvm.lines_written_back,
        nvm.xplines_touched,
        nvm.write_amplification()
    );

    // One unified report covering the whole pre-crash run: HTM, NVM
    // traffic, epoch stats, allocator footprint, latency histograms —
    // plus the time series and Perfetto trace if their flags were given.
    sink.write();

    // Full-system crash: everything not written back to media is lost.
    println!("simulating a crash...");
    let image = heap.crash();

    // Reboot: recover the epoch system, then rebuild the table's DRAM
    // index from the surviving KV blocks.
    let heap2 = Arc::new(NvmHeap::from_image(image));
    let (esys2, live) = EpochSys::recover(heap2, EpochConfig::default(), 2);
    println!("recovery found {} live KV blocks", live.len());
    let map2 = BdhtHashMap::recover(
        1 << 12,
        esys2,
        Arc::new(Htm::new(HtmConfig::default())),
        &live,
    );

    let mut survived = 0;
    for k in 0..10_000u64 {
        if map2.get(k) == Some(k * k) {
            survived += 1;
        }
    }
    println!(
        "{survived}/10000 inserts survived the crash (all durable epochs; \
         the last one or two epochs of work are intentionally sacrificed \
         by buffered durability)"
    );
    // The sacrificed tail is the last 1–2 epochs of inserts; its size
    // depends on scheduler timing (how many inserts landed in the final
    // epochs), so the floor is deliberately loose.
    assert!(survived >= 7000, "unexpectedly large data loss: {survived}");
}
