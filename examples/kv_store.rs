//! A miniature persistent KV store driven by a YCSB workload, showing
//! BD-Spash (the §4.3 back-port) operating as the storage engine of a
//! small service, with throughput and NVM-traffic reporting.
//!
//! ```sh
//! cargo run --release --example kv_store -- [threads] [seconds]
//! ```

use bd_htm::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let seconds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    let heap = Arc::new(NvmHeap::new(NvmConfig::optane(512 << 20)));
    let esys = EpochSys::format(
        Arc::clone(&heap),
        EpochConfig::default().with_epoch_len(Duration::from_millis(50)),
    );
    let htm = Arc::new(Htm::new(HtmConfig::default()));
    let store = Arc::new(BdSpash::new(Arc::clone(&esys), Arc::clone(&htm)));
    let ticker = EpochTicker::spawn(Arc::clone(&esys));

    // YCSB: Zipfian(0.99) keys over 2^18, write-heavy mix, prefill half.
    let spec = WorkloadSpec::zipfian(1 << 18, 0.99, Mix::write_heavy());
    let workload = spec.build();
    println!("prefilling half the key space...");
    for k in workload.prefill_keys() {
        store.insert(k, k ^ 0xDEAD);
    }

    println!("running {threads} threads for {seconds}s (zipfian 0.99, write-heavy)...");
    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let store = Arc::clone(&store);
            let workload = workload.clone();
            let stop = Arc::clone(&stop);
            let total_ops = Arc::clone(&total_ops);
            s.spawn(move || {
                let mut rng = Rng64::new(tid as u64 + 1);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let op = workload.next_op(&mut rng);
                    match op.kind {
                        OpKind::Read => {
                            let _ = store.get(op.key);
                        }
                        OpKind::Insert => {
                            store.insert(op.key, op.value);
                        }
                        OpKind::Remove => {
                            store.remove(op.key);
                        }
                    }
                    ops += 1;
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        std::thread::sleep(Duration::from_secs(seconds));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = t0.elapsed();
    ticker.stop();

    let ops = total_ops.load(Ordering::Relaxed);
    let h = htm.stats().snapshot();
    let n = heap.stats().snapshot();
    println!(
        "throughput: {:.2} Mops/s ({} ops in {:?})",
        ops as f64 / elapsed.as_secs_f64() / 1e6,
        ops,
        elapsed
    );
    println!(
        "HTM: commit ratio {:.1}%, fallbacks {}",
        h.commit_ratio() * 100.0,
        h.fallbacks
    );
    println!(
        "NVM: {} flushes, {} fences, {} XPLines, {} evicted lines",
        n.flushes, n.fences, n.xplines_touched, n.evicted_lines
    );
    let e = esys.stats().snapshot();
    println!(
        "epoch system: {} advances, {} blocks persisted in background, {} reclaimed",
        e.advances, e.blocks_persisted, e.blocks_reclaimed,
    );
    println!(
        "NVM space in use: {:.1} MiB",
        store.nvm_bytes() as f64 / (1 << 20) as f64
    );
}
